// aurora_inspect: offline bottleneck analysis over the observability
// artifacts the benches, simcheck, and the flight recorder write.
//
//   aurora_inspect <dump.json>             summary: stage attribution per
//                                          output, top bottleneck boxes, and
//                                          (for flight dumps) trace timelines
//   aurora_inspect --storage <dump.json>   tiered-store view: tier occupancy
//                                          per store, AOF/compaction/read
//                                          counters, read amplification, and
//                                          per-arc spill reconciliation
//   aurora_inspect --check <dump.json>     validate the dump: snapshot schema,
//                                          stage/e2e conservation, spill
//                                          conservation (unspill <= spill,
//                                          outstanding <= ever-spilled), and
//                                          batch-emission accounting (chunk
//                                          sizes reconcile with the per-arc
//                                          enqueue/deliver/hold counters);
//                                          nonzero exit on failure (CI)
//   aurora_inspect --diff <a.json> <b.json> metric deltas between two dumps
//   aurora_inspect --top N / --traces N    table / timeline row limits
//
// A "dump" is either a bare MetricsRegistry::SnapshotJson() object
// (obs_*.json) or any document embedding one under "metrics" (flight dumps),
// in which case the "spans" array also yields per-trace timelines.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/attribution.h"
#include "obs/json.h"
#include "obs/snapshot_diff.h"
#include "obs/trace.h"

namespace aurora {
namespace {

struct InspectOptions {
  int top_boxes = 10;
  int max_traces = 5;
  bool check = false;
  bool storage = false;
};

// ---------------------------------------------------------------------------
// Stage attribution table
// ---------------------------------------------------------------------------

/// One output's attribution series pulled out of the snapshot.
struct OutputAttribution {
  std::string output;
  MetricsSnapshot::HistogramStats e2e;
  MetricsSnapshot::HistogramStats stage[kNumStages];
  uint64_t dominant[kNumStages] = {};
};

std::vector<OutputAttribution> CollectAttribution(
    const MetricsSnapshot& snap) {
  const std::string prefix = "latency.attr.";
  const std::string e2e_suffix = ".e2e_us";
  std::vector<OutputAttribution> outs;
  for (const auto& [name, stats] : snap.histograms) {
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.size() <= prefix.size() + e2e_suffix.size()) continue;
    if (name.compare(name.size() - e2e_suffix.size(), e2e_suffix.size(),
                     e2e_suffix) != 0) {
      continue;
    }
    OutputAttribution oa;
    oa.output = name.substr(prefix.size(),
                            name.size() - prefix.size() - e2e_suffix.size());
    oa.e2e = stats;
    const std::string base = prefix + oa.output + ".";
    for (int i = 0; i < kNumStages; ++i) {
      const char* stage = StageName(static_cast<Stage>(i));
      auto it = snap.histograms.find(base + stage + "_us");
      if (it != snap.histograms.end()) oa.stage[i] = it->second;
      oa.dominant[i] = snap.CounterOr(base + "dominant." + stage);
    }
    outs.push_back(std::move(oa));
  }
  return outs;
}

void PrintAttribution(const std::vector<OutputAttribution>& outs) {
  if (outs.empty()) {
    std::printf(
        "No stage attribution recorded (latency.attr.* series absent; run "
        "with AURORA_TRACE=1).\n");
    return;
  }
  std::printf("Stage attribution per output (simulated us):\n");
  for (const OutputAttribution& oa : outs) {
    std::printf("  out:%s  deliveries=%llu  e2e mean=%.1fus p95=%.1fus\n",
                oa.output.c_str(),
                static_cast<unsigned long long>(oa.e2e.count), oa.e2e.mean,
                oa.e2e.p95);
    double total_sum = std::max(1e-12, oa.e2e.sum);
    int dom = 0;
    for (int i = 1; i < kNumStages; ++i) {
      if (oa.stage[i].sum > oa.stage[dom].sum) dom = i;
    }
    for (int i = 0; i < kNumStages; ++i) {
      double share = 100.0 * oa.stage[i].sum / total_sum;
      std::printf("    %-10s mean=%8.1fus  share=%5.1f%%  dominant_in=%llu%s\n",
                  StageName(static_cast<Stage>(i)), oa.stage[i].mean, share,
                  static_cast<unsigned long long>(oa.dominant[i]),
                  i == dom ? "  <- dominant" : "");
    }
  }
}

/// Conservation: per output, each stage histogram has exactly one sample per
/// delivery, and the stage sums add up to the e2e sum (exactly in the
/// engine; within float-print tolerance after a JSON round trip).
bool CheckAttribution(const std::vector<OutputAttribution>& outs) {
  bool ok = true;
  for (const OutputAttribution& oa : outs) {
    double stage_sum = 0.0;
    for (int i = 0; i < kNumStages; ++i) {
      stage_sum += oa.stage[i].sum;
      if (oa.stage[i].count != oa.e2e.count) {
        std::printf(
            "CHECK FAIL out:%s stage %s has %llu samples but e2e has %llu\n",
            oa.output.c_str(), StageName(static_cast<Stage>(i)),
            static_cast<unsigned long long>(oa.stage[i].count),
            static_cast<unsigned long long>(oa.e2e.count));
        ok = false;
      }
    }
    // %.6g snapshot serialization keeps ~6 significant digits per field.
    double tol = 1e-4 * std::max(1.0, oa.e2e.sum);
    if (std::abs(stage_sum - oa.e2e.sum) > tol) {
      std::printf(
          "CHECK FAIL out:%s stage sums %.6g != e2e sum %.6g (tol %.3g)\n",
          oa.output.c_str(), stage_sum, oa.e2e.sum, tol);
      ok = false;
    }
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Bottleneck boxes
// ---------------------------------------------------------------------------

struct BoxProfile {
  std::string box;  // "n<node>.<id>:<kind>"
  uint64_t self_us = 0;
  uint64_t activations = 0;
  uint64_t tuples = 0;
};

std::vector<BoxProfile> CollectBoxes(const MetricsSnapshot& snap) {
  const std::string prefix = "engine.box.";
  const std::string suffix = ".self_us";
  std::vector<BoxProfile> boxes;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind(prefix, 0) != 0 || name.size() <= prefix.size() + suffix.size()) {
      continue;
    }
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    BoxProfile bp;
    bp.box = name.substr(prefix.size(),
                         name.size() - prefix.size() - suffix.size());
    bp.self_us = value;
    const std::string base = prefix + bp.box + ".";
    bp.activations = snap.CounterOr(base + "activations");
    bp.tuples = snap.CounterOr(base + "tuples");
    boxes.push_back(std::move(bp));
  }
  std::sort(boxes.begin(), boxes.end(), [](const BoxProfile& a,
                                           const BoxProfile& b) {
    if (a.self_us != b.self_us) return a.self_us > b.self_us;
    return a.box < b.box;
  });
  return boxes;
}

void PrintBoxes(const std::vector<BoxProfile>& boxes, int top) {
  if (boxes.empty()) {
    std::printf("\nNo per-box profiles recorded (engine.box.* absent).\n");
    return;
  }
  std::printf("\nTop bottleneck boxes by self time:\n");
  std::printf("  %-28s %12s %12s %12s %10s\n", "box", "self_us", "activations",
              "tuples", "us/tuple");
  size_t n = std::min(boxes.size(), static_cast<size_t>(top));
  for (size_t i = 0; i < n; ++i) {
    const BoxProfile& b = boxes[i];
    double per_tuple = b.tuples == 0
                           ? 0.0
                           : static_cast<double>(b.self_us) /
                                 static_cast<double>(b.tuples);
    std::printf("  %-28s %12llu %12llu %12llu %10.2f\n", b.box.c_str(),
                static_cast<unsigned long long>(b.self_us),
                static_cast<unsigned long long>(b.activations),
                static_cast<unsigned long long>(b.tuples), per_tuple);
  }
  if (boxes.size() > n) {
    std::printf("  ... (%zu more)\n", boxes.size() - n);
  }
}

// ---------------------------------------------------------------------------
// Tiered storage (storage.* / engine.storage.*)
// ---------------------------------------------------------------------------

/// One tiered store's occupancy gauges, keyed by its `scope` label
/// (`storage.<scope>.mem.bytes` and friends).
struct StoreTiers {
  std::string scope;
  double mem_bytes = 0, mem_records = 0;
  double aof_bytes = 0, aof_segments = 0;
  double page_bytes = 0, page_files = 0;
  double read_amp = 0;
};

/// One arc's spill channel: current outstanding spilled tuples/bytes plus
/// their high-water marks (`engine.storage.spilled_{tuples,hwm}.<scope>.arcN`).
struct ArcSpill {
  std::string arc;  // "<scope>.arc<N>"
  double tuples = 0, tuples_hwm = 0;
  double bytes = 0, bytes_hwm = 0;
};

struct StorageView {
  std::vector<StoreTiers> stores;
  std::vector<ArcSpill> arcs;
  // Process-wide storage counters.
  uint64_t aof_appends = 0, aof_appended_bytes = 0, aof_fsyncs = 0;
  uint64_t segments_sealed = 0;
  uint64_t compactions = 0, compaction_records = 0, compaction_dropped = 0;
  uint64_t pages_written = 0;
  uint64_t reads = 0, read_records = 0, read_scanned = 0, read_bytes = 0;
  uint64_t truncates = 0;
  uint64_t recovered_records = 0, recovered_torn_bytes = 0;
  uint64_t halog_appends = 0, halog_replayed = 0;
  // Engine-side spill counters.
  uint64_t spill_events = 0, spill_tuples = 0, spill_bytes = 0;
  uint64_t unspill_tuples = 0;

  bool present() const {
    return !stores.empty() || aof_appends > 0 || spill_tuples > 0 ||
           unspill_tuples > 0;
  }
};

StorageView CollectStorage(const MetricsSnapshot& snap) {
  StorageView v;
  v.aof_appends = snap.CounterOr("storage.aof.appends");
  v.aof_appended_bytes = snap.CounterOr("storage.aof.appended_bytes");
  v.aof_fsyncs = snap.CounterOr("storage.aof.fsyncs");
  v.segments_sealed = snap.CounterOr("storage.aof.segments_sealed");
  v.compactions = snap.CounterOr("storage.compactions");
  v.compaction_records = snap.CounterOr("storage.compaction.records");
  v.compaction_dropped = snap.CounterOr("storage.compaction.dropped_records");
  v.pages_written = snap.CounterOr("storage.pages.written");
  v.reads = snap.CounterOr("storage.reads");
  v.read_records = snap.CounterOr("storage.reads.records");
  v.read_scanned = snap.CounterOr("storage.reads.records_scanned");
  v.read_bytes = snap.CounterOr("storage.reads.bytes");
  v.truncates = snap.CounterOr("storage.truncates");
  v.recovered_records = snap.CounterOr("storage.recovered.records");
  v.recovered_torn_bytes = snap.CounterOr("storage.recovered.torn_bytes");
  v.halog_appends = snap.CounterOr("storage.halog.appends");
  v.halog_replayed = snap.CounterOr("storage.halog.replayed");
  v.spill_events = snap.CounterOr("engine.storage.spill.events");
  v.spill_tuples = snap.CounterOr("engine.storage.spill.tuples");
  v.spill_bytes = snap.CounterOr("engine.storage.spill.bytes");
  v.unspill_tuples = snap.CounterOr("engine.storage.unspill.tuples");

  // Tier occupancy gauges: storage.<scope>.<tier metric>. The scope label
  // is whatever TieredStoreOptions::scope was, so it is recovered by
  // stripping a known suffix rather than by splitting on dots.
  std::map<std::string, StoreTiers> stores;
  struct Suffix {
    const char* text;
    double StoreTiers::* field;
  };
  static const Suffix kSuffixes[] = {
      {".mem.bytes", &StoreTiers::mem_bytes},
      {".mem.records", &StoreTiers::mem_records},
      {".aof.bytes", &StoreTiers::aof_bytes},
      {".aof.segments", &StoreTiers::aof_segments},
      {".page.bytes", &StoreTiers::page_bytes},
      {".page.files", &StoreTiers::page_files},
      {".read_amp", &StoreTiers::read_amp},
  };
  const std::string prefix = "storage.";
  for (const auto& [name, value] : snap.gauges) {
    if (name.rfind(prefix, 0) != 0) continue;
    for (const Suffix& s : kSuffixes) {
      size_t slen = std::strlen(s.text);
      if (name.size() <= prefix.size() + slen) continue;
      if (name.compare(name.size() - slen, slen, s.text) != 0) continue;
      std::string scope =
          name.substr(prefix.size(), name.size() - prefix.size() - slen);
      StoreTiers& st = stores[scope];
      st.scope = scope;
      st.*(s.field) = value;
      break;
    }
  }
  for (auto& [scope, st] : stores) v.stores.push_back(st);

  // Per-arc spill channels: engine.storage.spilled_tuples.<scope>.arc<N>
  // with a matching spilled_hwm (bytes) gauge.
  const std::string tuples_prefix = "engine.storage.spilled_tuples.";
  std::map<std::string, ArcSpill> arcs;
  for (const auto& [name, value] : snap.gauges) {
    if (name.rfind(tuples_prefix, 0) != 0) continue;
    std::string key = name.substr(tuples_prefix.size());
    ArcSpill& a = arcs[key];
    a.arc = key;
    a.tuples = value;
    a.tuples_hwm = snap.GaugeMaxOr(name, value);
    const std::string bytes_name = "engine.storage.spilled_hwm." + key;
    a.bytes = snap.GaugeOr(bytes_name);
    a.bytes_hwm = snap.GaugeMaxOr(bytes_name, a.bytes);
  }
  for (auto& [key, a] : arcs) v.arcs.push_back(a);
  return v;
}

void PrintStorage(const StorageView& v) {
  if (!v.present()) {
    std::printf(
        "\nNo tiered-storage activity recorded (storage.* series absent).\n");
    return;
  }
  std::printf("\nTiered storage:\n");
  if (!v.stores.empty()) {
    std::printf("  %-12s %10s %8s %10s %6s %10s %6s %9s\n", "store",
                "mem_bytes", "mem_rec", "aof_bytes", "segs", "page_bytes",
                "pages", "read_amp");
    for (const StoreTiers& st : v.stores) {
      std::printf("  %-12s %10.0f %8.0f %10.0f %6.0f %10.0f %6.0f %9.2f\n",
                  st.scope.c_str(), st.mem_bytes, st.mem_records, st.aof_bytes,
                  st.aof_segments, st.page_bytes, st.page_files, st.read_amp);
    }
  }
  std::printf("  aof: appends=%llu bytes=%llu fsyncs=%llu sealed=%llu\n",
              static_cast<unsigned long long>(v.aof_appends),
              static_cast<unsigned long long>(v.aof_appended_bytes),
              static_cast<unsigned long long>(v.aof_fsyncs),
              static_cast<unsigned long long>(v.segments_sealed));
  std::printf(
      "  compaction: runs=%llu records=%llu dropped=%llu pages_written=%llu "
      "truncates=%llu\n",
      static_cast<unsigned long long>(v.compactions),
      static_cast<unsigned long long>(v.compaction_records),
      static_cast<unsigned long long>(v.compaction_dropped),
      static_cast<unsigned long long>(v.pages_written),
      static_cast<unsigned long long>(v.truncates));
  double amp = v.read_records == 0
                   ? 0.0
                   : static_cast<double>(v.read_scanned) /
                         static_cast<double>(v.read_records);
  std::printf(
      "  reads: calls=%llu records=%llu scanned=%llu bytes=%llu "
      "amplification=%.2f\n",
      static_cast<unsigned long long>(v.reads),
      static_cast<unsigned long long>(v.read_records),
      static_cast<unsigned long long>(v.read_scanned),
      static_cast<unsigned long long>(v.read_bytes), amp);
  std::printf(
      "  recovery: records=%llu torn_bytes=%llu  halog: appends=%llu "
      "replayed=%llu\n",
      static_cast<unsigned long long>(v.recovered_records),
      static_cast<unsigned long long>(v.recovered_torn_bytes),
      static_cast<unsigned long long>(v.halog_appends),
      static_cast<unsigned long long>(v.halog_replayed));
  std::printf(
      "  spill: events=%llu tuples=%llu bytes=%llu unspilled=%llu "
      "outstanding=%lld\n",
      static_cast<unsigned long long>(v.spill_events),
      static_cast<unsigned long long>(v.spill_tuples),
      static_cast<unsigned long long>(v.spill_bytes),
      static_cast<unsigned long long>(v.unspill_tuples),
      static_cast<long long>(v.spill_tuples) -
          static_cast<long long>(v.unspill_tuples));
  for (const ArcSpill& a : v.arcs) {
    std::printf(
        "    %-20s tuples=%6.0f (hwm %6.0f)  bytes=%8.0f (hwm %8.0f)\n",
        a.arc.c_str(), a.tuples, a.tuples_hwm, a.bytes, a.bytes_hwm);
  }
}

/// Spill conservation over the dump. Gauges are refreshed on budget
/// enforcement, so a gauge may read stale-high against the end-of-run
/// counters; the sound invariants are the ones against the all-time spill
/// counters, not against the residual.
bool CheckStorage(const StorageView& v) {
  if (!v.present()) return true;  // nothing to reconcile
  bool ok = true;
  if (v.unspill_tuples > v.spill_tuples) {
    std::printf(
        "CHECK FAIL storage: unspill.tuples=%llu exceeds spill.tuples=%llu "
        "(read back more than was ever spilled)\n",
        static_cast<unsigned long long>(v.unspill_tuples),
        static_cast<unsigned long long>(v.spill_tuples));
    ok = false;
  }
  double arc_tuples = 0, arc_bytes = 0;
  for (const ArcSpill& a : v.arcs) {
    arc_tuples += a.tuples;
    arc_bytes += a.bytes;
  }
  if (arc_tuples > static_cast<double>(v.spill_tuples)) {
    std::printf(
        "CHECK FAIL storage: per-arc outstanding spilled tuples %.0f exceed "
        "spill.tuples=%llu\n",
        arc_tuples, static_cast<unsigned long long>(v.spill_tuples));
    ok = false;
  }
  if (arc_bytes > static_cast<double>(v.spill_bytes)) {
    std::printf(
        "CHECK FAIL storage: per-arc outstanding spilled bytes %.0f exceed "
        "spill.bytes=%llu\n",
        arc_bytes, static_cast<unsigned long long>(v.spill_bytes));
    ok = false;
  }
  if (v.read_scanned < v.read_records) {
    std::printf(
        "CHECK FAIL storage: reads.records=%llu exceed records_scanned=%llu "
        "(read amplification below 1 is impossible)\n",
        static_cast<unsigned long long>(v.read_records),
        static_cast<unsigned long long>(v.read_scanned));
    ok = false;
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Batched-emission accounting
// ---------------------------------------------------------------------------

/// The engine.batch.* / engine.threaded.batch.* counters chunked emission
/// maintains. Missing counters read as 0, so scalar (batch=1) dumps and
/// dumps from before the batched path pass trivially.
struct BatchView {
  // Single-threaded engine (RouteChunk).
  double chunks = 0;        ///< engine.batch.emitted_chunks
  double chunk_tuples = 0;  ///< engine.batch.emitted_tuples (sum of sizes)
  double fanout = 0;        ///< engine.batch.fanout_tuples (tuples x arcs)
  double enqueued = 0;      ///< engine.batch.chunk_enqueued (to box queues)
  double delivered = 0;     ///< engine.batch.chunk_delivered (to outputs)
  double held = 0;          ///< engine.batch.chunk_held (choked arcs)
  // Threaded engine (EmitChunk -> ring multi-push).
  double t_chunks = 0;      ///< engine.threaded.batch.emitted_chunks
  double t_tuples = 0;      ///< engine.threaded.batch.emitted_tuples
  double t_publishes = 0;   ///< engine.threaded.batch.multipush_publishes

  bool present() const {
    return chunks > 0 || chunk_tuples > 0 || fanout > 0 || t_chunks > 0 ||
           t_tuples > 0 || t_publishes > 0;
  }
};

BatchView CollectBatch(const MetricsSnapshot& snap) {
  BatchView v;
  v.chunks = snap.CounterOr("engine.batch.emitted_chunks");
  v.chunk_tuples = snap.CounterOr("engine.batch.emitted_tuples");
  v.fanout = snap.CounterOr("engine.batch.fanout_tuples");
  v.enqueued = snap.CounterOr("engine.batch.chunk_enqueued");
  v.delivered = snap.CounterOr("engine.batch.chunk_delivered");
  v.held = snap.CounterOr("engine.batch.chunk_held");
  v.t_chunks = snap.CounterOr("engine.threaded.batch.emitted_chunks");
  v.t_tuples = snap.CounterOr("engine.threaded.batch.emitted_tuples");
  v.t_publishes = snap.CounterOr("engine.threaded.batch.multipush_publishes");
  return v;
}

/// Chunked emission never invents or drops tuples: every tuple of every
/// chunk fans out to each downstream arc exactly once, and on each arc it is
/// enqueued to a box, delivered to an output, or held on a choked arc.
bool CheckBatch(const BatchView& v) {
  if (!v.present()) return true;  // scalar dump: nothing to reconcile
  bool ok = true;
  if (v.chunks > v.chunk_tuples) {
    std::printf(
        "CHECK FAIL batch: emitted_chunks=%.0f exceed emitted_tuples=%.0f "
        "(every chunk carries at least one tuple)\n",
        v.chunks, v.chunk_tuples);
    ok = false;
  }
  if (v.enqueued + v.delivered + v.held != v.fanout) {
    std::printf(
        "CHECK FAIL batch: chunk_enqueued=%.0f + chunk_delivered=%.0f + "
        "chunk_held=%.0f != fanout_tuples=%.0f (per-arc tuple counters do "
        "not reconcile with the emitted chunk sizes)\n",
        v.enqueued, v.delivered, v.held, v.fanout);
    ok = false;
  }
  if (v.t_chunks > v.t_tuples) {
    std::printf(
        "CHECK FAIL batch: threaded emitted_chunks=%.0f exceed "
        "emitted_tuples=%.0f (every chunk carries at least one tuple)\n",
        v.t_chunks, v.t_tuples);
    ok = false;
  }
  if (v.t_chunks == 0 && v.t_publishes > 0) {
    std::printf(
        "CHECK FAIL batch: multipush_publishes=%.0f without any threaded "
        "emitted chunk (ring multi-push only runs under chunked emission)\n",
        v.t_publishes);
    ok = false;
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Trace timelines (flight dumps)
// ---------------------------------------------------------------------------

struct SpanRow {
  uint64_t trace_id;
  std::string kind;
  int node;
  std::string site;
  int64_t start_us;
  int64_t end_us;
};

std::vector<SpanRow> CollectSpans(const JsonValue& doc) {
  std::vector<SpanRow> rows;
  const JsonValue* spans = doc.FindArray("spans");
  if (spans == nullptr) return rows;
  for (const JsonValue& s : spans->AsArray()) {
    if (!s.is_object()) continue;
    SpanRow row;
    row.trace_id = static_cast<uint64_t>(s.NumberOr("trace_id", 0));
    row.kind = s.StringOr("kind", "?");
    row.node = static_cast<int>(s.NumberOr("node", -1));
    row.site = s.StringOr("site", "");
    row.start_us = static_cast<int64_t>(s.NumberOr("start_us", 0));
    row.end_us = static_cast<int64_t>(s.NumberOr("end_us", 0));
    rows.push_back(std::move(row));
  }
  return rows;
}

void PrintTimelines(const std::vector<SpanRow>& rows, int max_traces) {
  if (rows.empty()) return;
  std::map<uint64_t, std::vector<const SpanRow*>> by_trace;
  size_t system_spans = 0;
  for (const SpanRow& r : rows) {
    if (r.trace_id == 0) {
      system_spans++;
    } else {
      by_trace[r.trace_id].push_back(&r);
    }
  }
  std::printf("\nTrace timelines (%zu spans, %zu traces, %zu system spans):\n",
              rows.size(), by_trace.size(), system_spans);
  int printed = 0;
  // Newest traces carry the evidence nearest the anomaly: walk ids
  // descending.
  for (auto it = by_trace.rbegin();
       it != by_trace.rend() && printed < max_traces; ++it, ++printed) {
    std::vector<const SpanRow*>& spans = it->second;
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanRow* a, const SpanRow* b) {
                       return a->start_us < b->start_us;
                     });
    int64_t t0 = spans.front()->start_us;
    int64_t t_end = spans.back()->end_us;
    std::printf("  trace %llu (%lldus end to end):\n",
                static_cast<unsigned long long>(it->first),
                static_cast<long long>(t_end - t0));
    for (const SpanRow* s : spans) {
      std::printf("    +%-8lld %-13s n%-3d %s",
                  static_cast<long long>(s->start_us - t0), s->kind.c_str(),
                  s->node, s->site.c_str());
      if (s->end_us > s->start_us) {
        std::printf("  (%lldus)",
                    static_cast<long long>(s->end_us - s->start_us));
      }
      std::printf("\n");
    }
  }
  if (static_cast<int>(by_trace.size()) > printed) {
    std::printf("  ... (%zu more traces)\n", by_trace.size() - printed);
  }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

int Inspect(const std::string& path, const InspectOptions& opts) {
  Result<JsonValue> doc = JsonValue::ParseFile(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "aurora_inspect: %s\n",
                 doc.status().ToString().c_str());
    return 2;
  }
  Result<MetricsSnapshot> snap = MetricsSnapshot::FromJson(*doc);
  if (!snap.ok()) {
    std::fprintf(stderr, "aurora_inspect: %s: %s\n", path.c_str(),
                 snap.status().ToString().c_str());
    return 2;
  }

  std::printf("== %s ==\n", path.c_str());
  std::string event = doc->StringOr("event", "");
  if (!event.empty()) {
    std::printf("flight dump: event=%s detail=\"%s\" sim_time_us=%lld "
                "spans_dropped=%lld\n\n",
                event.c_str(), doc->StringOr("detail", "").c_str(),
                static_cast<long long>(doc->NumberOr("sim_time_us", -1)),
                static_cast<long long>(doc->NumberOr("spans_dropped", 0)));
  }

  std::vector<OutputAttribution> attribution = CollectAttribution(*snap);
  StorageView storage = CollectStorage(*snap);
  if (opts.storage) {
    PrintStorage(storage);
  } else {
    PrintAttribution(attribution);
    PrintBoxes(CollectBoxes(*snap), opts.top_boxes);
    PrintTimelines(CollectSpans(*doc), opts.max_traces);
  }

  if (opts.check) {
    BatchView batch = CollectBatch(*snap);
    bool ok = CheckAttribution(attribution);
    ok = CheckStorage(storage) && ok;
    ok = CheckBatch(batch) && ok;
    if (!ok) return 1;
    std::printf("\nCHECK OK: %zu outputs conserve stage attribution, "
                "%zu spill arcs reconcile, "
                "batch emission %s (%.0f chunks / %.0f tuples), "
                "%zu counters, %zu gauges, %zu histograms parsed.\n",
                attribution.size(), storage.arcs.size(),
                batch.present() ? "reconciles" : "absent",
                batch.chunks + batch.t_chunks,
                batch.chunk_tuples + batch.t_tuples, snap->counters.size(),
                snap->gauges.size(), snap->histograms.size());
  }
  return 0;
}

int Diff(const std::string& path_a, const std::string& path_b) {
  Result<MetricsSnapshot> a = MetricsSnapshot::FromJsonFile(path_a);
  if (!a.ok()) {
    std::fprintf(stderr, "aurora_inspect: %s: %s\n", path_a.c_str(),
                 a.status().ToString().c_str());
    return 2;
  }
  Result<MetricsSnapshot> b = MetricsSnapshot::FromJsonFile(path_b);
  if (!b.ok()) {
    std::fprintf(stderr, "aurora_inspect: %s: %s\n", path_b.c_str(),
                 b.status().ToString().c_str());
    return 2;
  }
  SnapshotDiff diff = SnapshotDiff::Between(*a, *b);
  std::printf("== diff %s -> %s ==\n", path_a.c_str(), path_b.c_str());
  if (diff.empty()) {
    std::printf("  identical metric values.\n");
  } else {
    std::printf("%s", diff.ToText().c_str());
    std::printf("  (%zu metrics changed)\n", diff.changed.size());
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: aurora_inspect [--check] [--storage] [--top N] [--traces N] "
      "<dump.json>\n"
      "       aurora_inspect --diff <a.json> <b.json>\n");
  return 2;
}

int Main(int argc, char** argv) {
  InspectOptions opts;
  std::vector<std::string> paths;
  bool diff = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--diff") == 0) {
      diff = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      opts.check = true;
    } else if (std::strcmp(argv[i], "--storage") == 0) {
      opts.storage = true;
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      opts.top_boxes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--traces") == 0 && i + 1 < argc) {
      opts.max_traces = std::atoi(argv[++i]);
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (diff) {
    if (paths.size() != 2) return Usage();
    return Diff(paths[0], paths[1]);
  }
  if (paths.size() != 1) return Usage();
  return Inspect(paths[0], opts);
}

}  // namespace
}  // namespace aurora

int main(int argc, char** argv) { return aurora::Main(argc, argv); }
