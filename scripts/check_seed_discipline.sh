#!/usr/bin/env bash
# Seed discipline check: every source of randomness in the tree must be the
# seeded, platform-stable aurora::Rng (tests go through MakeTestRng in
# tests/test_util.h). Raw rand()/srand(), std::random_device, and the
# standard-library engines are banned because their streams differ across
# platforms and standard-library versions, which makes failing runs
# unreproducible — the whole point of simcheck's replayable seeds.
#
# Run from the repo root:  scripts/check_seed_discipline.sh
# Exits 1 and lists offending lines if any banned construct is found.
set -u

cd "$(dirname "$0")/.."

PATTERN='\b(rand|srand|rand_r|drand48)[[:space:]]*\(|std::random_device|std::mt19937|minstd_rand|default_random_engine|ranlux[0-9]|knuth_b|#include[[:space:]]*<random>'

# Strip // line comments before matching so prose about the ban (and this
# script's own documentation) does not trip the check.
offenders=$(grep -rnE --include='*.cc' --include='*.h' --include='*.cpp' \
    "$PATTERN" src tests bench examples 2>/dev/null |
  awk -F: '{ line = $0; sub(/^[^:]*:[^:]*:/, "", line);
             sub(/\/\/.*/, "", line);
             if (line ~ /[^[:space:]]/) print $0 }' |
  grep -nE "$PATTERN" | cut -d: -f2-)

if [ -n "$offenders" ]; then
  echo "seed discipline violation: use aurora::Rng (tests: MakeTestRng)" >&2
  echo "$offenders" >&2
  exit 1
fi

echo "seed discipline: OK"
