// Threaded-runtime simcheck gate: generated scenarios run on the
// ThreadedEngine at several worker counts must produce byte-identical
// output rows to the single-threaded oracle engine. Scenario chains are
// linear, so the diff is exact — any divergence is a runtime bug (lost,
// duplicated, or reordered tuple on some arc).
#include <gtest/gtest.h>

#include "check/threaded_check.h"

namespace aurora {
namespace {

constexpr int kSeeds = 25;

void RunSeeds(int workers) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ScenarioSpec spec = GenerateScenario(seed);
    ThreadedCheckReport report = RunThreadedScenario(spec, workers);
    ASSERT_TRUE(report.ok()) << "seed " << seed << " workers " << workers
                             << "\n" << report.Summary();
    EXPECT_EQ(report.injected, static_cast<uint64_t>(spec.trace_n));
    EXPECT_FALSE(report.outputs.empty());
  }
}

TEST(ThreadedSimcheckTest, OneWorkerMatchesOracle) { RunSeeds(1); }
TEST(ThreadedSimcheckTest, TwoWorkersMatchOracle) { RunSeeds(2); }
TEST(ThreadedSimcheckTest, FourWorkersMatchOracle) { RunSeeds(4); }

}  // namespace
}  // namespace aurora
