// Threaded-runtime simcheck gate: generated scenarios run on the
// ThreadedEngine at several worker counts must produce byte-identical
// output rows to the single-threaded oracle engine. Scenario chains are
// linear, so the diff is exact — any divergence is a runtime bug (lost,
// duplicated, or reordered tuple on some arc).
#include <gtest/gtest.h>

#include "check/threaded_check.h"

namespace aurora {
namespace {

constexpr int kSeeds = 25;

void RunSeeds(int workers, int batch_size = 1) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ScenarioSpec spec = GenerateScenario(seed);
    ThreadedCheckReport report = RunThreadedScenario(spec, workers,
                                                    batch_size);
    ASSERT_TRUE(report.ok()) << "seed " << seed << " workers " << workers
                             << " batch " << batch_size << "\n"
                             << report.Summary();
    EXPECT_EQ(report.injected, static_cast<uint64_t>(spec.trace_n));
    EXPECT_FALSE(report.outputs.empty());
  }
}

TEST(ThreadedSimcheckTest, OneWorkerMatchesOracle) { RunSeeds(1); }
TEST(ThreadedSimcheckTest, TwoWorkersMatchOracle) { RunSeeds(2); }
TEST(ThreadedSimcheckTest, FourWorkersMatchOracle) { RunSeeds(4); }

// Batched + threaded vs scalar + single-threaded: both dimensions of the
// execution model change at once, the oracle stays fixed. The diff is
// still exact — batch dequeue preserves per-arc FIFO on linear chains.
TEST(ThreadedSimcheckTest, OneWorkerBatchedMatchesOracle) { RunSeeds(1, 8); }
TEST(ThreadedSimcheckTest, TwoWorkersBatchedMatchOracle) { RunSeeds(2, 8); }
TEST(ThreadedSimcheckTest, FourWorkersBatchedMatchOracle) { RunSeeds(4, 8); }

}  // namespace
}  // namespace aurora
