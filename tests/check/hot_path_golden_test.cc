// Bit-identical regression gate for the hot-path overhaul: 25 simcheck
// scenario seeds must produce exactly the run reports they produced before
// copy-on-write tuples, bound-once field access, hash group-by, and the
// ready-queue scheduler landed. The goldens hash both the generated scenario
// spec text (workload determinism) and the full run-report summary (output
// tuples, QoS numbers, recovery stats), so any behavioural drift — emission
// order, drain order, scheduler decisions — shows up as a hash mismatch.
//
// Golden values were captured on the pre-overhaul tree (commit 0858d04) with
// the same FNV-1a construction. If a FUTURE, intentional semantic change
// shifts them, regenerate with that construction and note why in the commit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/runner.h"
#include "check/scenario.h"

namespace aurora {
namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

struct Golden {
  uint64_t seed;
  uint64_t hash;
};

constexpr Golden kPreOverhaulGoldens[] = {
    {1, 0xdd610af5f48d3489ull},  {2, 0x9d437ba8e55bc75dull},
    {3, 0x6c356c9059ee29abull},  {4, 0x361621eb27f49532ull},
    {5, 0xe64f3e52d70dc100ull},  {6, 0xe57edd5935be9cfaull},
    {7, 0xdb7b6b965eb9c3d4ull},  {8, 0x127ad1138b070bbfull},
    {9, 0xde20a3d4e37d0430ull},  {10, 0x31c6e0efbd7afadbull},
    {11, 0xc745ee3241d97912ull}, {12, 0x9afe381d3eadee83ull},
    {13, 0xb1697d882c959aa8ull}, {14, 0x5578c56b9f6dec5eull},
    {15, 0x6c32727558bfa6d8ull}, {16, 0x3f3b61520b1d3f2full},
    {17, 0xaa18190947399567ull}, {18, 0x379bab8dcd7e0c33ull},
    {19, 0x6f643f3e7cd99837ull}, {20, 0xe1594ba77b6819bfull},
    {21, 0x81b896b1d1103fa6ull}, {22, 0x29ba3f29c1bed541ull},
    {23, 0xcb09fc349e69aa3full}, {24, 0xcf27737b00053476ull},
    {25, 0xd0a8daa5db5ac914ull},
};

void CheckGoldens(const RunOptions& opts, const char* mode) {
  for (const Golden& g : kPreOverhaulGoldens) {
    ScenarioSpec spec = GenerateScenario(g.seed);
    std::string text = spec.ToSpec();
    RunReport report = RunScenario(spec, opts);
    uint64_t h = Fnv1a(text + "\n--\n" + report.Summary());
    EXPECT_EQ(h, g.hash) << "seed " << g.seed << " (" << mode
                         << ") diverged from the pre-overhaul golden";
  }
}

TEST(HotPathGoldenTest, TwentyFiveSeedsBitIdenticalToPreOverhaul) {
  CheckGoldens(RunOptions{}, "scalar");
}

// The batched (ProcessBatch) path gates on the SAME goldens: enabling
// batch dequeue must not move a single byte of any run report — output
// rows, QoS numbers, scheduler stats, recovery behaviour all identical.
TEST(HotPathGoldenTest, BatchedModeMatchesTheSameGoldens) {
  RunOptions opts;
  opts.batch_size = 8;
  CheckGoldens(opts, "batch=8");
}

// Odd batch size: chunk tails never divide evenly, catching any
// accounting that assumes full batches.
TEST(HotPathGoldenTest, OddBatchSizeMatchesTheSameGoldens) {
  RunOptions opts;
  opts.batch_size = 7;
  CheckGoldens(opts, "batch=7");
}

}  // namespace
}  // namespace aurora
