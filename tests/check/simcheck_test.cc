// The simulation model checker checking itself: spec round-trips, a fixed
// block of generated seeds that must stay clean, and the canary that proves
// the harness catches real bugs — with receiver dedup disabled it must find
// a duplicate-delivery violation quickly, shrink it to a tiny fault
// schedule, and replay the shrunk spec bit-identically.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/runner.h"
#include "check/scenario.h"
#include "check/shrinker.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::MakeTestRng;

// Every generated scenario must survive a Parse(ToSpec()) round-trip
// unchanged — otherwise shrunk spec files would not replay what failed.
TEST(ScenarioSpecTest, GeneratedSpecsRoundTripThroughText) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    ScenarioSpec spec = GenerateScenario(seed);
    ASSERT_TRUE(spec.Validate().ok())
        << "seed " << seed << ": " << spec.Validate().ToString();
    std::string text = spec.ToSpec();
    auto reparsed = ScenarioSpec::Parse(text);
    ASSERT_TRUE(reparsed.ok())
        << "seed " << seed << ": " << reparsed.status().ToString();
    EXPECT_EQ(reparsed->ToSpec(), text) << "seed " << seed;
  }
}

TEST(ScenarioSpecTest, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(ScenarioSpec::Parse("").ok());  // no trace line
  EXPECT_FALSE(ScenarioSpec::Parse("trace 10 4 500\nbox 0 9 filter_ge 5\n")
                   .ok());  // box on a node outside the cluster
  EXPECT_FALSE(
      ScenarioSpec::Parse("trace 10 4 500\nbox 0 0 no_such_template 1\n")
          .ok());
  EXPECT_FALSE(ScenarioSpec::Parse("nodes 99\ntrace 10 4 500\n").ok());
}

// The standing regression block: these seeds ran clean when the checker
// shipped. A violation here means either a real regression in the engine /
// transport / fault stack or an intended semantics change — investigate,
// don't reseed.
TEST(SimcheckTest, FixedSeedBlockStaysClean) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    ScenarioSpec spec = GenerateScenario(seed);
    RunReport report = RunScenario(spec);
    EXPECT_TRUE(report.ok()) << "seed " << seed << " failed:\n"
                             << report.Summary();
  }
}

// A quiet scenario with no faults must drain and match the oracle exactly.
TEST(SimcheckTest, HandWrittenSpecMatchesOracle) {
  auto spec = ScenarioSpec::Parse(
      "seed 7\n"
      "nodes 3\n"
      "trace 120 6 400\n"
      "box 0 0 filter_ge 20\n"
      "box 0 1 map_sum\n"
      "box 0 2 tumble_sum 4\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  RunReport report = RunScenario(*spec);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.drained);
  EXPECT_FALSE(report.diff_skipped);
  EXPECT_EQ(report.outputs.at("out0").size(),
            report.oracle_outputs.at("out0").size());
}

// The canary: disabling receiver-side dedup is a seeded real bug, and the
// checker must (a) find a duplicate-delivery violation within 100 seeds,
// (b) shrink the scenario to at most 3 fault events, and (c) replay the
// shrunk spec text with a bit-identical report, twice.
TEST(SimcheckTest, DedupOffIsCaughtShrunkAndReplayedDeterministically) {
  auto has_duplicate = [](const RunReport& report) {
    for (const Violation& v : report.violations) {
      if (v.invariant == "duplicate_delivery") return true;
    }
    return false;
  };

  ScenarioSpec failing;
  bool found = false;
  for (uint64_t seed = 1; seed <= 100 && !found; ++seed) {
    ScenarioSpec spec = GenerateScenario(seed);
    spec.dedup = false;
    if (has_duplicate(RunScenario(spec))) {
      failing = spec;
      found = true;
    }
  }
  ASSERT_TRUE(found)
      << "dedup disabled but no duplicate_delivery in 100 seeds";

  ScenarioSpec shrunk = ShrinkScenario(
      failing, [&](const ScenarioSpec& cand) {
        return has_duplicate(RunScenario(cand));
      });
  EXPECT_LE(shrunk.faults.size(), 3u);
  EXPECT_LE(shrunk.trace_n, failing.trace_n);

  // Replay path: serialize, reparse, run twice — identical summaries.
  std::string text = shrunk.ToSpec();
  auto replayed = ScenarioSpec::Parse(text);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  RunReport first = RunScenario(*replayed);
  RunReport second = RunScenario(*replayed);
  EXPECT_TRUE(has_duplicate(first)) << first.Summary();
  EXPECT_EQ(first.Summary(), second.Summary());
}

// With dedup on, the exact same scenarios that trip the canary stay clean:
// the violation is the seeded bug, not harness noise.
TEST(SimcheckTest, DedupOnSilencesTheCanarySeeds) {
  int checked = 0;
  for (uint64_t seed = 1; seed <= 100 && checked < 3; ++seed) {
    ScenarioSpec off = GenerateScenario(seed);
    off.dedup = false;
    RunReport broken = RunScenario(off);
    if (broken.ok()) continue;
    ++checked;
    ScenarioSpec on = GenerateScenario(seed);
    RunReport clean = RunScenario(on);
    EXPECT_TRUE(clean.ok()) << "seed " << seed << ":\n" << clean.Summary();
  }
  EXPECT_GE(checked, 3);
}

// Reports are deterministic functions of the spec — rerunning any generated
// scenario reproduces the identical summary (the property --replay rests on).
TEST(SimcheckTest, ReportsAreDeterministicAcrossRuns) {
  Rng rng = MakeTestRng(91);
  for (int i = 0; i < 5; ++i) {
    uint64_t seed = 1 + rng.Uniform(500);
    ScenarioSpec spec = GenerateScenario(seed);
    EXPECT_EQ(RunScenario(spec).Summary(), RunScenario(spec).Summary())
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace aurora
