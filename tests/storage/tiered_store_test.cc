#include "storage/tiered_store.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "obs/metrics.h"
#include "storage/storage_fs.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

std::vector<uint8_t> Payload(int i) {
  std::string s = "record-" + std::to_string(i);
  return std::vector<uint8_t>(s.begin(), s.end());
}

uint64_t Put(TieredStore* store, const std::string& stream, int i) {
  std::vector<uint8_t> p = Payload(i);
  return store->Append(stream, i * 1000, p.data(), p.size());
}

class TieredStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Global().Reset(); }
};

TEST_F(TieredStoreTest, AppendAssignsMonotoneSeqAndReadsBack) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());

  EXPECT_EQ(Put(&store, "s", 1), 1u);
  EXPECT_EQ(Put(&store, "s", 2), 2u);
  EXPECT_EQ(Put(&store, "other", 7), 1u);  // per-stream seq space
  EXPECT_EQ(store.next_seq("s"), 3u);
  EXPECT_EQ(store.live_records("s"), 2u);

  auto rec = store.Read("s", 2);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->seq, 2u);
  EXPECT_EQ(rec->timestamp_us, 2000);
  EXPECT_EQ(rec->payload, Payload(2));
  EXPECT_FALSE(store.Read("s", 99).ok());
  EXPECT_FALSE(store.Read("missing", 1).ok());
}

TEST_F(TieredStoreTest, ReadsServeAcrossAllThreeTiers) {
  MemStorageFs fs;
  TieredStoreOptions opts;
  opts.mem_budget_bytes = 64;     // evicts almost immediately
  opts.aof_segment_bytes = 256;   // seals after a few records
  opts.compactions_per_tick = 1;
  TieredStore store(&fs, opts);
  ASSERT_OK(store.Open());

  const int kN = 40;
  for (int i = 1; i <= kN; ++i) Put(&store, "s", i);
  // Enough ticks to seal and compact most segments into pages.
  for (int i = 0; i < 20; ++i) store.Tick(SimTime::Millis(i));
  EXPECT_GT(store.num_pages(), 0u);
  EXPECT_LT(store.mem_records(), static_cast<size_t>(kN));

  // Every record is still readable regardless of which tier holds it.
  for (int i = 1; i <= kN; ++i) {
    auto rec = store.Read("s", static_cast<uint64_t>(i));
    ASSERT_TRUE(rec.ok()) << "seq " << i;
    EXPECT_EQ(rec->payload, Payload(i));
  }

  int scanned = 0;
  size_t n = store.ScanAll("s", [&](const StoredRecord& r) {
    ++scanned;
    EXPECT_EQ(r.seq, static_cast<uint64_t>(scanned));
  });
  EXPECT_EQ(n, static_cast<size_t>(kN));
  EXPECT_EQ(scanned, kN);
}

TEST_F(TieredStoreTest, ScanTimePrunesByTimestamp) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());
  for (int i = 1; i <= 10; ++i) Put(&store, "s", i);  // ts = 1000..10000

  std::vector<uint64_t> seqs;
  size_t n = store.ScanTime("s", 3000, 6000,
                            [&](const StoredRecord& r) { seqs.push_back(r.seq); });
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(seqs, (std::vector<uint64_t>{3, 4, 5, 6}));
}

TEST_F(TieredStoreTest, TruncateKillsRecordsAndCompactionDropsThem) {
  MemStorageFs fs;
  TieredStoreOptions opts;
  opts.aof_segment_bytes = 128;
  TieredStore store(&fs, opts);
  ASSERT_OK(store.Open());
  for (int i = 1; i <= 10; ++i) Put(&store, "s", i);

  store.Truncate("s", 6);
  EXPECT_EQ(store.floor_seq("s"), 6u);
  EXPECT_EQ(store.live_records("s"), 4u);
  EXPECT_FALSE(store.Read("s", 6).ok());
  ASSERT_TRUE(store.Read("s", 7).ok());

  std::vector<uint64_t> seqs;
  store.ScanAll("s", [&](const StoredRecord& r) { seqs.push_back(r.seq); });
  EXPECT_EQ(seqs, (std::vector<uint64_t>{7, 8, 9, 10}));

  for (int i = 0; i < 30; ++i) store.Tick(SimTime::Millis(i));
  EXPECT_GT(MetricsRegistry::Global().CounterValue(
                "storage.compaction.dropped_records"),
            0u);
  // Dead records stay dead after compaction.
  EXPECT_FALSE(store.Read("s", 3).ok());
  ASSERT_TRUE(store.Read("s", 10).ok());
}

TEST_F(TieredStoreTest, TruncateNeverReusesSequenceNumbers) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());
  for (int i = 1; i <= 5; ++i) Put(&store, "s", i);
  store.Truncate("s", 5);
  EXPECT_EQ(store.live_records("s"), 0u);
  EXPECT_EQ(Put(&store, "s", 6), 6u);  // continues, does not restart at 1

  // Floors are durable: a crash + reopen must not resurrect dead seqs.
  store.Crash();
  ASSERT_OK(store.Open());
  EXPECT_EQ(store.floor_seq("s"), 5u);
  EXPECT_GE(store.next_seq("s"), 6u);
}

TEST_F(TieredStoreTest, CrashLosesUnsyncedFlushMakesDurable) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());
  for (int i = 1; i <= 3; ++i) Put(&store, "s", i);
  ASSERT_OK(store.Flush());
  for (int i = 4; i <= 6; ++i) Put(&store, "s", i);  // never synced

  store.Crash();
  ASSERT_OK(store.Open());
  EXPECT_EQ(store.live_records("s"), 3u);
  EXPECT_EQ(store.next_seq("s"), 4u);
  for (int i = 1; i <= 3; ++i) {
    auto rec = store.Read("s", static_cast<uint64_t>(i));
    ASSERT_TRUE(rec.ok()) << "seq " << i;
    EXPECT_EQ(rec->payload, Payload(i));
  }
  EXPECT_FALSE(store.Read("s", 4).ok());
}

TEST_F(TieredStoreTest, RecoveryToleratesTornTail) {
  MemStorageFs fs;
  fs.set_torn_writes(true);
  TieredStore store(&fs);
  ASSERT_OK(store.Open());
  for (int i = 1; i <= 4; ++i) Put(&store, "s", i);
  ASSERT_OK(store.Flush());
  // Unsynced records of growing size, so the torn cut (half the unsynced
  // suffix) cannot land exactly on a frame boundary.
  for (int i = 5; i <= 8; ++i) {
    std::vector<uint8_t> p(static_cast<size_t>(i) * 13, 0x5A);
    store.Append("s", i * 1000, p.data(), p.size());
  }

  store.Crash();  // leaves half the unsynced suffix: a torn frame mid-file
  ASSERT_OK(store.Open());
  // At least the synced prefix recovers; the torn tail is skipped, and
  // whatever whole frames survived in the torn half may recover too.
  uint64_t live = store.live_records("s");
  EXPECT_GE(live, 4u);
  EXPECT_LT(live, 8u);
  EXPECT_GT(MetricsRegistry::Global().CounterValue("storage.recovered.torn_bytes"),
            0u);
  for (uint64_t i = 1; i <= live; ++i) {
    ASSERT_TRUE(store.Read("s", i).ok()) << "seq " << i;
  }
  // Appends continue after the recovered high-water mark.
  EXPECT_EQ(Put(&store, "s", 100), live + 1);
}

TEST_F(TieredStoreTest, SyncEveryAppendSurvivesCrashCompletely) {
  MemStorageFs fs;
  TieredStoreOptions opts;
  opts.sync_every_append = true;
  TieredStore store(&fs, opts);
  ASSERT_OK(store.Open());
  for (int i = 1; i <= 5; ++i) Put(&store, "s", i);

  store.Crash();
  ASSERT_OK(store.Open());
  EXPECT_EQ(store.live_records("s"), 5u);
}

TEST_F(TieredStoreTest, AppendWithSeqKeepsCallerSeqSpace) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());
  std::vector<uint8_t> p = Payload(1);
  ASSERT_OK(store.AppendWithSeq("halog", 10, 0, p.data(), p.size()));
  ASSERT_OK(store.AppendWithSeq("halog", 12, 0, p.data(), p.size()));
  EXPECT_FALSE(store.AppendWithSeq("halog", 12, 0, p.data(), p.size()).ok());
  EXPECT_FALSE(store.AppendWithSeq("halog", 5, 0, p.data(), p.size()).ok());
  EXPECT_EQ(store.next_seq("halog"), 13u);
  ASSERT_TRUE(store.Read("halog", 12).ok());
  EXPECT_FALSE(store.Read("halog", 11).ok());  // gap, never written
}

TEST_F(TieredStoreTest, SameOperationsProduceByteIdenticalStorage) {
  auto run = [](MemStorageFs* fs) {
    TieredStoreOptions opts;
    opts.mem_budget_bytes = 128;
    opts.aof_segment_bytes = 256;
    TieredStore store(fs, opts);
    ASSERT_OK(store.Open());
    for (int i = 1; i <= 30; ++i) {
      Put(&store, "a", i);
      if (i % 3 == 0) Put(&store, "b", i);
      if (i % 10 == 0) store.Truncate("a", static_cast<uint64_t>(i - 8));
      store.Tick(SimTime::Millis(i));
    }
    ASSERT_OK(store.Flush());
  };
  MemStorageFs fs1, fs2;
  run(&fs1);
  MetricsRegistry::Global().Reset();
  run(&fs2);
  EXPECT_EQ(fs1.ContentDigest(), fs2.ContentDigest());
}

TEST_F(TieredStoreTest, GaugesAndCountersTrackOccupancy) {
  MemStorageFs fs;
  TieredStoreOptions opts;
  opts.mem_budget_bytes = 64;
  opts.aof_segment_bytes = 256;
  opts.scope = "t1";
  TieredStore store(&fs, opts);
  ASSERT_OK(store.Open());
  for (int i = 1; i <= 40; ++i) Put(&store, "s", i);
  for (int i = 0; i < 20; ++i) store.Tick(SimTime::Millis(i));
  for (int i = 1; i <= 40; ++i) store.Read("s", static_cast<uint64_t>(i));

  MetricsRegistry& reg = MetricsRegistry::Global();
  EXPECT_EQ(reg.CounterValue("storage.aof.appends"), 40u);
  EXPECT_GT(reg.CounterValue("storage.aof.fsyncs"), 0u);
  EXPECT_GT(reg.CounterValue("storage.compactions"), 0u);
  EXPECT_GT(reg.CounterValue("storage.pages.written"), 0u);
  EXPECT_EQ(reg.CounterValue("storage.reads"), 40u);
  EXPECT_GE(reg.CounterValue("storage.reads.records"), 40u);
  EXPECT_EQ(static_cast<double>(store.mem_bytes()),
            reg.GetGauge("storage.t1.mem.bytes")->value());
  EXPECT_EQ(static_cast<double>(store.num_pages()),
            reg.GetGauge("storage.t1.page.files")->value());
}

}  // namespace
}  // namespace aurora
