// Connection-point historical storage: the tiered mode added for durable
// history plus regression coverage for QueryHistory edge cases and the
// SnapshotHistory handle-snapshot (COW aliasing) contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/storage_fs.h"
#include "storage/tiered_store.h"
#include "stream/connection_point.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::SchemaAB;

Tuple MakeT(int64_t a, uint64_t seq) {
  Tuple t = MakeTuple(SchemaAB(), {Value(a), Value(a * 2)});
  t.set_seq(seq);
  t.set_timestamp(SimTime::Millis(static_cast<int64_t>(seq)));
  return t;
}

std::vector<int64_t> QueryAll(const ConnectionPoint& cp) {
  std::vector<int64_t> out;
  cp.QueryHistory([](const Tuple&) { return true; },
                  [&](const Tuple& t) { out.push_back(GetInt(t, "A")); });
  return out;
}

TEST(CpStorageTest, SnapshotHistoryIsHandleSnapshotNotDeepCopy) {
  ConnectionPoint cp("cp", RetentionPolicy{});
  cp.Record(MakeT(1, 1), SimTime::Millis(1));
  cp.Record(MakeT(2, 2), SimTime::Millis(2));

  std::vector<Tuple> snap = cp.SnapshotHistory();
  ASSERT_EQ(snap.size(), 2u);
  // The handles alias the stored bodies — this is the documented contract
  // since the COW refactor, not a deep copy.
  EXPECT_TRUE(snap[0].SharesBodyWith(cp.history()[0]));

  // Copy-on-write is what keeps the two sides independent: mutating the
  // snapshot detaches a private body and leaves the history untouched.
  snap[0].SetValue(0, Value(int64_t{99}));
  EXPECT_FALSE(snap[0].SharesBodyWith(cp.history()[0]));
  EXPECT_EQ(GetInt(cp.history()[0], "A"), 1);
  EXPECT_EQ(GetInt(snap[0], "A"), 99);
}

TEST(CpStorageTest, QueryHistoryEmptyAndFilterEdges) {
  ConnectionPoint cp("cp", RetentionPolicy{});
  EXPECT_EQ(QueryAll(cp).size(), 0u);  // empty history

  for (uint64_t i = 1; i <= 5; ++i) cp.Record(MakeT(static_cast<int64_t>(i), i),
                                              SimTime::Millis(i));
  // Filter matching nothing.
  size_t n = cp.QueryHistory([](const Tuple&) { return false; },
                             [](const Tuple&) { FAIL() << "unexpected tuple"; });
  EXPECT_EQ(n, 0u);
  // Filter matching everything, oldest first.
  EXPECT_EQ(QueryAll(cp), (std::vector<int64_t>{1, 2, 3, 4, 5}));
  // Selective filter.
  std::vector<int64_t> odd;
  cp.QueryHistory([](const Tuple& t) { return GetInt(t, "A") % 2 == 1; },
                  [&](const Tuple& t) { odd.push_back(GetInt(t, "A")); });
  EXPECT_EQ(odd, (std::vector<int64_t>{1, 3, 5}));
}

TEST(CpStorageTest, TieredModeServesAcrossMemoryAndStoreTiers) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());
  ConnectionPoint cp("cp", RetentionPolicy{});
  cp.BindStorage(&store, "cp/test", /*mem_tuples=*/4, SchemaAB());

  const int kN = 20;
  for (int i = 1; i <= kN; ++i) {
    cp.Record(MakeT(i, static_cast<uint64_t>(i)), SimTime::Millis(i));
  }
  EXPECT_EQ(cp.history_size(), static_cast<size_t>(kN));
  EXPECT_LE(cp.history().size(), 4u);  // memory tier capped

  // Queries stitch store reads (old) and cache hits (new) in order.
  std::vector<int64_t> all = QueryAll(cp);
  ASSERT_EQ(all.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(all[i], i + 1);

  // The tier boundary itself: a filter spanning exactly the last cached and
  // first store-resident record.
  std::vector<int64_t> band;
  cp.QueryHistory(
      [&](const Tuple& t) {
        int64_t a = GetInt(t, "A");
        return a >= kN - 4 && a <= kN - 3;
      },
      [&](const Tuple& t) { band.push_back(GetInt(t, "A")); });
  EXPECT_EQ(band, (std::vector<int64_t>{kN - 4, kN - 3}));
}

TEST(CpStorageTest, RetentionEvictsAcrossTiersAndTruncatesStore) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());
  RetentionPolicy policy;
  policy.max_tuples = 6;
  ConnectionPoint cp("cp", policy);
  cp.BindStorage(&store, "cp/ret", /*mem_tuples=*/3, SchemaAB());

  for (int i = 1; i <= 15; ++i) {
    cp.Record(MakeT(i, static_cast<uint64_t>(i)), SimTime::Millis(i));
  }
  EXPECT_EQ(cp.history_size(), 6u);
  EXPECT_EQ(QueryAll(cp), (std::vector<int64_t>{10, 11, 12, 13, 14, 15}));
  // Evicted records are truncated out of the store, not just hidden.
  EXPECT_EQ(store.live_records("cp/ret"), 6u);
  EXPECT_EQ(store.floor_seq("cp/ret"), 9u);
}

TEST(CpStorageTest, MaxAgeRetentionInTieredMode) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());
  RetentionPolicy policy;
  policy.max_age = SimDuration::Millis(5);
  ConnectionPoint cp("cp", policy);
  cp.BindStorage(&store, "cp/age", /*mem_tuples=*/2, SchemaAB());

  for (int i = 1; i <= 10; ++i) {
    cp.Record(MakeT(i, static_cast<uint64_t>(i)), SimTime::Millis(i));
  }
  // At now=10ms, tuples older than 5ms (ts < 5ms) are gone.
  std::vector<int64_t> all = QueryAll(cp);
  ASSERT_FALSE(all.empty());
  EXPECT_GE(all.front(), 5);
  EXPECT_EQ(all.back(), 10);
}

TEST(CpStorageTest, BindStorageSeedsStoreFromExistingHistory) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());
  ConnectionPoint cp("cp", RetentionPolicy{});
  for (int i = 1; i <= 5; ++i) {
    cp.Record(MakeT(i, static_cast<uint64_t>(i)), SimTime::Millis(i));
  }

  cp.BindStorage(&store, "cp/seed", /*mem_tuples=*/2, SchemaAB());
  EXPECT_EQ(store.live_records("cp/seed"), 5u);
  EXPECT_EQ(cp.history_size(), 5u);
  EXPECT_EQ(QueryAll(cp), (std::vector<int64_t>{1, 2, 3, 4, 5}));
}

TEST(CpStorageTest, DropAndRecoverRebuildsFromDurableTiers) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());
  ConnectionPoint cp("cp", RetentionPolicy{});
  cp.BindStorage(&store, "cp/rec", /*mem_tuples=*/3, SchemaAB());
  for (int i = 1; i <= 12; ++i) {
    cp.Record(MakeT(i, static_cast<uint64_t>(i)), SimTime::Millis(i));
  }
  ASSERT_OK(store.Flush());

  // Crash: the store survives (flushed), the point's volatile state dies.
  store.Crash();
  cp.DropMemoryTier();
  EXPECT_EQ(cp.history_size(), 0u);

  ASSERT_OK(store.Open());
  cp.RecoverFromStorage(SimTime::Millis(12));
  EXPECT_EQ(cp.history_size(), 12u);
  EXPECT_LE(cp.history().size(), 3u);
  std::vector<int64_t> all = QueryAll(cp);
  ASSERT_EQ(all.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(all[i], i + 1);
}

TEST(CpStorageTest, RecoveryAppliesRetentionAtRecoveryTime) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());
  RetentionPolicy policy;
  policy.max_tuples = 4;
  ConnectionPoint cp("cp", policy);
  cp.BindStorage(&store, "cp/rr", /*mem_tuples=*/2, SchemaAB());
  for (int i = 1; i <= 10; ++i) {
    cp.Record(MakeT(i, static_cast<uint64_t>(i)), SimTime::Millis(i));
  }
  ASSERT_OK(store.Flush());
  store.Crash();
  cp.DropMemoryTier();
  ASSERT_OK(store.Open());
  cp.RecoverFromStorage(SimTime::Millis(10));
  EXPECT_EQ(cp.history_size(), 4u);
  EXPECT_EQ(QueryAll(cp), (std::vector<int64_t>{7, 8, 9, 10}));
}

}  // namespace
}  // namespace aurora
