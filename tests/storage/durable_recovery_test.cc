// End-to-end durable storage: budget-constrained engine runs that spill
// real tuple bytes and read them back without changing results, and node
// crash/restart where connection-point history, HA output logs, and
// sequence counters come back from the tiered store (§6.3 replay fed from
// disk instead of from a surviving peer).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/aurora_engine.h"
#include "fault/injector.h"
#include "obs/metrics.h"
#include "storage/storage_fs.h"
#include "storage/tiered_store.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::SchemaAB;

class DurableRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Global().Reset(); }
};

/// Builds filter -> tumble on one engine and runs `n` tuples through it,
/// returning the output values in order.
std::vector<int64_t> RunChain(AuroraEngine* engine, int n) {
  PortId in = *engine->AddInput("in", SchemaAB());
  BoxId filter = *engine->AddBox(FilterSpec(Predicate::True()));
  BoxId tumble = *engine->AddBox(TumbleSpec("cnt", "B", {"A"}));
  PortId out = *engine->AddOutput("out");
  EXPECT_OK(engine->Connect(Endpoint::InputPort(in),
                            Endpoint::BoxPort(filter, 0)).status());
  EXPECT_OK(engine->Connect(Endpoint::BoxPort(filter, 0),
                            Endpoint::BoxPort(tumble, 0)).status());
  EXPECT_OK(engine->Connect(Endpoint::BoxPort(tumble, 0),
                            Endpoint::OutputPort(out)).status());
  EXPECT_OK(engine->InitializeBoxes());

  std::vector<int64_t> got;
  engine->SetOutputCallback(
      out, [&](const Tuple& t, SimTime) { got.push_back(GetInt(t, "A")); });
  for (int i = 0; i < n; ++i) {
    Tuple t = MakeTuple(SchemaAB(), {Value(i % 7), Value(i)});
    t.set_timestamp(SimTime::Millis(i));
    EXPECT_OK(engine->PushInput(in, std::move(t), SimTime::Millis(i)));
  }
  EXPECT_OK(engine->RunUntilQuiescent(SimTime::Seconds(10)));
  return got;
}

TEST_F(DurableRecoveryTest, BudgetConstrainedRunSpillsReadsBackSameResult) {
  // Oracle: unbounded memory, no storage.
  AuroraEngine oracle;
  std::vector<int64_t> expected = RunChain(&oracle, 400);
  ASSERT_FALSE(expected.empty());

  MetricsRegistry::Global().Reset();
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());
  EngineOptions opts;
  opts.memory_budget_bytes = 512;  // far below the run's working set
  AuroraEngine engine(opts);
  engine.AttachDurableStore(&store);
  std::vector<int64_t> got = RunChain(&engine, 400);

  // Spilling moved real bytes through the store and read them back, and
  // the answer is unchanged.
  EXPECT_EQ(got, expected);
  MetricsRegistry& reg = MetricsRegistry::Global();
  uint64_t spilled = reg.CounterValue("engine.storage.spill.tuples");
  uint64_t unspilled = reg.CounterValue("engine.storage.unspill.tuples");
  EXPECT_GT(spilled, 0u);
  EXPECT_GT(unspilled, 0u);
  EXPECT_LE(unspilled, spilled);  // conservation: reads never outrun writes
  EXPECT_GT(reg.CounterValue("storage.aof.appends"), 0u);
  EXPECT_GT(reg.CounterValue("storage.reads"), 0u);
}

TEST_F(DurableRecoveryTest, EngineCpHistorySurvivesCrashViaStore) {
  MemStorageFs fs;
  TieredStoreOptions sopts;
  sopts.sync_every_append = true;
  TieredStore store(&fs, sopts);
  ASSERT_OK(store.Open());

  EngineOptions opts;
  opts.cp_cache_tuples = 4;
  AuroraEngine engine(opts);
  engine.AttachDurableStore(&store);

  PortId in = *engine.AddInput("in", SchemaAB());
  BoxId filter = *engine.AddBox(FilterSpec(Predicate::True()));
  PortId out = *engine.AddOutput("out");
  ArcId cp_arc = *engine.Connect(Endpoint::InputPort(in),
                                 Endpoint::BoxPort(filter, 0));
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(filter, 0),
                           Endpoint::OutputPort(out)).status());
  ASSERT_OK(engine.InitializeBoxes());
  ASSERT_OK(engine.MakeConnectionPoint(cp_arc, "cp", RetentionPolicy{}));

  for (int i = 1; i <= 30; ++i) {
    Tuple t = MakeTuple(SchemaAB(), {Value(i), Value(i)});
    t.set_timestamp(SimTime::Millis(i));
    ASSERT_OK(engine.PushInput(in, std::move(t), SimTime::Millis(i)));
  }
  ASSERT_OK(engine.RunUntilQuiescent(SimTime::Millis(30)));
  ConnectionPoint* cp = *engine.GetConnectionPoint("cp");
  ASSERT_EQ(cp->history_size(), 30u);

  // Crash the storage consumers and the store, then recover.
  engine.WipeVolatileStorage();
  store.Crash();
  EXPECT_EQ(cp->history_size(), 0u);
  ASSERT_OK(store.Open());
  engine.RecoverDurableState(SimTime::Millis(30));

  EXPECT_EQ(cp->history_size(), 30u);
  EXPECT_LE(cp->history().size(), 4u);  // only the cache tier in RAM
  std::vector<int64_t> replayed;
  cp->QueryHistory([](const Tuple&) { return true; },
                   [&](const Tuple& t) { replayed.push_back(GetInt(t, "A")); });
  ASSERT_EQ(replayed.size(), 30u);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(replayed[i], i + 1);
}

TEST_F(DurableRecoveryTest, NodeCrashRestartRecoversHalogAndReplays) {
  Simulation sim;
  OverlayNetwork net(&sim);
  AuroraStarSystem system(&sim, &net, StarOptions{});
  NodeId s1 = *system.AddNode(NodeOptions{"s1", 1.0, {}});
  NodeId s2 = *system.AddNode(NodeOptions{"s2", 1.0, {}});
  net.FullMesh(LinkOptions{});

  GlobalQuery query;
  ASSERT_OK(query.AddInput("in", SchemaAB()));
  ASSERT_OK(query.AddBox("f", FilterSpec(Predicate::True())));
  ASSERT_OK(query.AddBox("m", MapSpec({{"A", Expr::FieldRef("A")},
                                       {"B", Expr::FieldRef("B")}})));
  ASSERT_OK(query.AddOutput("out"));
  ASSERT_OK(query.ConnectInputToBox("in", "f"));
  ASSERT_OK(query.ConnectBoxes("f", 0, "m", 0));
  ASSERT_OK(query.ConnectBoxToOutput("m", 0, "out"));
  auto deployed = DeployQuery(&system, query, {{"f", s1}, {"m", s2}});
  ASSERT_TRUE(deployed.ok()) << deployed.status().ToString();

  // s1 keeps output logs, mirrored into a durable store that syncs every
  // append (zero durability lag, so the whole log survives the crash).
  system.node(s1).RetainOutputLogs(true);
  system.node(s2).RetainOutputLogs(true);
  MemStorageFs fs;
  TieredStoreOptions sopts;
  sopts.sync_every_append = true;
  TieredStore store(&fs, sopts);
  ASSERT_OK(store.Open());
  system.node(s1).AttachDurableStorage(&store);

  uint64_t delivered = 0;
  ASSERT_OK(system.CollectOutput(s2, "out",
                                 [&](const Tuple&, SimTime) { ++delivered; }));
  for (int i = 0; i < 1200; ++i) {
    sim.ScheduleAt(SimTime::Millis(i), [&system, s1, i]() {
      Tuple t = MakeTuple(SchemaAB(), {Value(i), Value(i)});
      (void)system.node(s1).Inject("in", t);
    });
  }

  FaultPlan plan;
  plan.CrashAt(SimTime::Millis(500), s1).RestartAt(SimTime::Millis(700), s1);
  Injector injector(&system, plan, InjectorOptions{});
  ASSERT_OK(injector.Arm());
  sim.RunUntil(SimTime::Seconds(3));

  MetricsRegistry& reg = MetricsRegistry::Global();
  EXPECT_GT(reg.CounterValue("storage.halog.appends"), 0u);
  // The injector ran durable recovery on restart: the output log was
  // rebuilt from the halog stream and replayed downstream.
  EXPECT_GT(reg.CounterValue("storage.halog.replayed"), 0u);
  bool has_log = false;
  for (const auto& [name, binding] : system.node(s1).bindings()) {
    if (!binding.output_log.empty()) has_log = true;
  }
  EXPECT_TRUE(has_log);
  // s2 saw the replayed pre-crash tuples again and suppressed them.
  EXPECT_GT(system.node(s2).duplicate_tuples_dropped(), 0u);
  // Fresh post-restart tuples kept flowing: sequence counters were restored
  // from the store, so the receiver's dedup watermark does not eat them.
  EXPECT_GT(delivered, 800u);
}

TEST_F(DurableRecoveryTest, DurableRecoveryBeatsPlainRestart) {
  // Same crash/restart schedule twice; only the second run attaches a
  // durable store. The durable run must end with a recovered (non-empty)
  // output log on the crashed node, the plain run loses it for good.
  auto run = [](bool durable, uint64_t* log_entries) {
    Simulation sim;
    OverlayNetwork net(&sim);
    AuroraStarSystem system(&sim, &net, StarOptions{});
    NodeId s1 = *system.AddNode(NodeOptions{"s1", 1.0, {}});
    NodeId s2 = *system.AddNode(NodeOptions{"s2", 1.0, {}});
    net.FullMesh(LinkOptions{});
    GlobalQuery query;
    EXPECT_OK(query.AddInput("in", SchemaAB()));
    EXPECT_OK(query.AddBox("f", FilterSpec(Predicate::True())));
    EXPECT_OK(query.AddBox("m", MapSpec({{"A", Expr::FieldRef("A")},
                                         {"B", Expr::FieldRef("B")}})));
    EXPECT_OK(query.AddOutput("out"));
    EXPECT_OK(query.ConnectInputToBox("in", "f"));
    EXPECT_OK(query.ConnectBoxes("f", 0, "m", 0));
    EXPECT_OK(query.ConnectBoxToOutput("m", 0, "out"));
    auto deployed = DeployQuery(&system, query, {{"f", s1}, {"m", s2}});
    EXPECT_TRUE(deployed.ok());
    system.node(s1).RetainOutputLogs(true);

    MemStorageFs fs;
    TieredStoreOptions sopts;
    sopts.sync_every_append = true;
    TieredStore store(&fs, sopts);
    EXPECT_OK(store.Open());
    if (durable) system.node(s1).AttachDurableStorage(&store);

    for (int i = 0; i < 600; ++i) {
      sim.ScheduleAt(SimTime::Millis(i), [&system, s1, i]() {
        Tuple t = MakeTuple(SchemaAB(), {Value(i), Value(i)});
        (void)system.node(s1).Inject("in", t);
      });
    }
    FaultPlan plan;
    plan.CrashAt(SimTime::Millis(300), s1).RestartAt(SimTime::Millis(400), s1);
    Injector injector(&system, plan, InjectorOptions{});
    EXPECT_OK(injector.Arm());
    sim.RunUntil(SimTime::Seconds(2));

    *log_entries = 0;
    for (const auto& [name, binding] : system.node(s1).bindings()) {
      *log_entries += binding.output_log.size();
    }
  };

  uint64_t plain = 0, durable = 0;
  run(false, &plain);
  MetricsRegistry::Global().Reset();
  run(true, &durable);
  // Without storage, the pre-crash log entries are simply gone; with it,
  // they are back on the node (only post-crash sends exist in the plain
  // run, so the durable log is strictly larger).
  EXPECT_GT(durable, plain);
}

}  // namespace
}  // namespace aurora
