#include "storage/storage_fs.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "tests/test_util.h"

namespace aurora {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string Str(const std::vector<uint8_t>& v) {
  return std::string(v.begin(), v.end());
}

TEST(MemStorageFsTest, AppendReadRoundtrip) {
  MemStorageFs fs;
  EXPECT_FALSE(fs.Exists("a/log"));
  ASSERT_OK(fs.Append("a/log", Bytes("hello").data(), 5));
  ASSERT_OK(fs.Append("a/log", Bytes(" world").data(), 6));
  EXPECT_TRUE(fs.Exists("a/log"));

  auto data = fs.ReadFile("a/log");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(Str(*data), "hello world");
  auto size = fs.FileSize("a/log");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);
  EXPECT_EQ(fs.appends(), 2u);
  EXPECT_EQ(fs.bytes_appended(), 11u);
}

TEST(MemStorageFsTest, CrashDropsUnsyncedSuffixOnly) {
  MemStorageFs fs;
  ASSERT_OK(fs.Append("log", Bytes("durable").data(), 7));
  ASSERT_OK(fs.Sync("log"));
  ASSERT_OK(fs.Append("log", Bytes("volatile").data(), 8));
  EXPECT_EQ(fs.UnsyncedBytes("log"), 8u);

  fs.Crash();
  auto data = fs.ReadFile("log");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(Str(*data), "durable");
  EXPECT_EQ(fs.UnsyncedBytes("log"), 0u);
  EXPECT_EQ(fs.crashes(), 1u);
}

TEST(MemStorageFsTest, CrashRemovesNeverSyncedFile) {
  MemStorageFs fs;
  ASSERT_OK(fs.Append("tmp", Bytes("x").data(), 1));
  fs.Crash();
  EXPECT_FALSE(fs.Exists("tmp"));
}

TEST(MemStorageFsTest, TornWritesKeepHalfTheUnsyncedSuffix) {
  MemStorageFs fs;
  fs.set_torn_writes(true);
  ASSERT_OK(fs.Append("log", Bytes("good").data(), 4));
  ASSERT_OK(fs.Sync("log"));
  ASSERT_OK(fs.Append("log", Bytes("ABCDEFGH").data(), 8));

  fs.Crash();
  auto data = fs.ReadFile("log");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(Str(*data), "goodABCD");  // synced prefix + half the suffix
}

TEST(MemStorageFsTest, SyncErrorLeavesBytesVolatile) {
  MemStorageFs fs;
  fs.set_sync_error(Status::Unavailable("disk on fire"));
  ASSERT_OK(fs.Append("log", Bytes("data").data(), 4));
  EXPECT_FALSE(fs.Sync("log").ok());
  EXPECT_EQ(fs.UnsyncedBytes("log"), 4u);

  fs.set_sync_error(Status::OK());
  ASSERT_OK(fs.Sync("log"));
  EXPECT_EQ(fs.UnsyncedBytes("log"), 0u);
}

TEST(MemStorageFsTest, WriteFileAtomicIsDurableAndReplaces) {
  MemStorageFs fs;
  ASSERT_OK(fs.WriteFileAtomic("page", Bytes("v1")));
  ASSERT_OK(fs.WriteFileAtomic("page", Bytes("version-two")));
  fs.Crash();  // atomic writes are durable on return
  auto data = fs.ReadFile("page");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(Str(*data), "version-two");
}

TEST(MemStorageFsTest, ListReturnsSortedPrefixMatches) {
  MemStorageFs fs;
  ASSERT_OK(fs.Append("aof/000002.log", Bytes("b").data(), 1));
  ASSERT_OK(fs.Append("aof/000001.log", Bytes("a").data(), 1));
  ASSERT_OK(fs.Append("page/000001.page", Bytes("p").data(), 1));

  std::vector<std::string> aof = fs.List("aof/");
  ASSERT_EQ(aof.size(), 2u);
  EXPECT_EQ(aof[0], "aof/000001.log");
  EXPECT_EQ(aof[1], "aof/000002.log");
  EXPECT_EQ(fs.List("").size(), 3u);
  EXPECT_TRUE(fs.List("nope/").empty());
}

TEST(MemStorageFsTest, RemoveAndMissingFileErrors) {
  MemStorageFs fs;
  ASSERT_OK(fs.Append("f", Bytes("x").data(), 1));
  ASSERT_OK(fs.Remove("f"));
  EXPECT_FALSE(fs.Exists("f"));
  EXPECT_FALSE(fs.ReadFile("f").ok());
  EXPECT_FALSE(fs.FileSize("f").ok());
  EXPECT_FALSE(fs.Remove("f").ok());
}

TEST(MemStorageFsTest, ContentDigestTracksByteIdenticalState) {
  MemStorageFs a, b;
  for (MemStorageFs* fs : {&a, &b}) {
    ASSERT_OK(fs->Append("log", Bytes("same bytes").data(), 10));
    ASSERT_OK(fs->WriteFileAtomic("page", Bytes("same page")));
  }
  EXPECT_EQ(a.ContentDigest(), b.ContentDigest());

  ASSERT_OK(b.Append("log", Bytes("!").data(), 1));
  EXPECT_NE(a.ContentDigest(), b.ContentDigest());
}

TEST(PosixStorageFsTest, RoundtripAgainstRealDirectory) {
  std::string tmpl = ::testing::TempDir() + "aurora_fs_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  ASSERT_NE(mkdtemp(buf.data()), nullptr);
  std::string root(buf.data());

  PosixStorageFs fs(root);
  ASSERT_OK(fs.Append("aof/000001.log", Bytes("abc").data(), 3));
  ASSERT_OK(fs.Append("aof/000001.log", Bytes("def").data(), 3));
  ASSERT_OK(fs.Sync("aof/000001.log"));
  ASSERT_OK(fs.WriteFileAtomic("meta.bin", Bytes("meta")));

  auto data = fs.ReadFile("aof/000001.log");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(Str(*data), "abcdef");
  auto size = fs.FileSize("meta.bin");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 4u);

  std::vector<std::string> all = fs.List("");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "aof/000001.log");
  EXPECT_EQ(all[1], "meta.bin");

  ASSERT_OK(fs.Remove("aof/000001.log"));
  EXPECT_FALSE(fs.Exists("aof/000001.log"));
  ASSERT_OK(fs.Remove("meta.bin"));
}

}  // namespace
}  // namespace aurora
