#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/storage_manager.h"
#include "obs/metrics.h"
#include "storage/storage_fs.h"
#include "storage/tiered_store.h"
#include "stream/stream_queue.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::SchemaAB;

Tuple MakeT(int64_t a, int64_t b, uint64_t seq) {
  Tuple t = MakeTuple(SchemaAB(), {Value(a), Value(b)});
  t.set_seq(seq);
  t.set_timestamp(SimTime::Millis(static_cast<int64_t>(seq)));
  return t;
}

class SpillStorageTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Global().Reset(); }
};

TEST_F(SpillStorageTest, ModeledModeStillMarksWithoutMovingBytes) {
  StreamQueue q;
  for (uint64_t i = 1; i <= 8; ++i) q.Push(MakeT(1, 2, i));
  size_t bytes = q.bytes();

  StorageManager sm(bytes / 2);  // over budget, no store attached
  size_t spilled = sm.EnforceBudget({{&q, 0}});
  EXPECT_GT(spilled, 0u);
  EXPECT_GT(q.spilled_count(), 0u);
  EXPECT_EQ(q.bytes(), bytes);  // nothing actually left the queue

  // Spilled slots still hold the full tuples in modeled mode.
  Tuple t = q.Pop();
  EXPECT_EQ(GetInt(t, "A"), 1);
  EXPECT_EQ(t.seq(), 1u);
  EXPECT_EQ(q.unspill_reads(), 1u);
}

TEST_F(SpillStorageTest, DurableSpillMovesBytesAndReadsBackInOrder) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());

  StreamQueue q;
  const uint64_t kN = 10;
  for (uint64_t i = 1; i <= kN; ++i) {
    q.Push(MakeT(static_cast<int64_t>(i), static_cast<int64_t>(i * 10), i));
  }
  size_t bytes = q.bytes();

  StorageManager sm(1);  // force nearly everything out
  sm.set_scope("t");
  sm.AttachStore(&store);
  size_t spilled = sm.EnforceBudget({{&q, 3}});
  EXPECT_GT(spilled, 0u);
  EXPECT_LT(q.resident_bytes(), bytes);
  EXPECT_EQ(q.bytes(), bytes);  // logical content unchanged
  EXPECT_GT(store.live_records("spill/t/arc3"), 0u);
  size_t n_spilled = q.spilled_count();

  // Spilled slots are metadata stubs: seq survives, values do not.
  EXPECT_EQ(q.items().front().seq(), 1u);
  EXPECT_EQ(q.items().front().schema(), nullptr);

  // Pops reconstruct the original tuples, FIFO, values intact.
  for (uint64_t i = 1; i <= kN; ++i) {
    Tuple t = q.Pop();
    EXPECT_EQ(t.seq(), i);
    ASSERT_NE(t.schema(), nullptr) << "seq " << i;
    EXPECT_EQ(GetInt(t, "A"), static_cast<int64_t>(i));
    EXPECT_EQ(GetInt(t, "B"), static_cast<int64_t>(i * 10));
  }
  EXPECT_EQ(q.bytes(), 0u);
  EXPECT_EQ(q.unspill_reads(), n_spilled);
  // Full drain truncates the spill stream back to empty.
  EXPECT_EQ(store.live_records("spill/t/arc3"), 0u);

  MetricsRegistry& reg = MetricsRegistry::Global();
  EXPECT_EQ(reg.CounterValue("engine.storage.spill.tuples"), n_spilled);
  EXPECT_EQ(reg.CounterValue("engine.storage.unspill.tuples"), n_spilled);
  EXPECT_GE(reg.CounterValue("engine.storage.spill.bytes"), spilled);
}

TEST_F(SpillStorageTest, SpilledHwmGaugesTrackPerArcHighWater) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());

  StreamQueue q;
  for (uint64_t i = 1; i <= 8; ++i) q.Push(MakeT(1, 1, i));
  StorageManager sm(1);
  sm.set_scope("hwm");
  sm.AttachStore(&store);
  sm.EnforceBudget({{&q, 5}});
  size_t peak_tuples = q.spilled_count();
  size_t peak_bytes = q.spilled_bytes();
  ASSERT_GT(peak_tuples, 0u);

  while (!q.empty()) q.Pop();
  sm.EnforceBudget({{&q, 5}});  // refreshes gauges at zero

  MetricsRegistry& reg = MetricsRegistry::Global();
  Gauge* hwm_b = reg.GetGauge("engine.storage.spilled_hwm.hwm.arc5");
  Gauge* hwm_t = reg.GetGauge("engine.storage.spilled_tuples.hwm.arc5");
  EXPECT_EQ(hwm_b->value(), 0.0);
  EXPECT_EQ(hwm_b->max(), static_cast<double>(peak_bytes));
  EXPECT_EQ(hwm_t->max(), static_cast<double>(peak_tuples));
}

TEST_F(SpillStorageTest, ClearDiscardsSpilledAndTruncatesStore) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());

  StreamQueue q;
  for (uint64_t i = 1; i <= 6; ++i) q.Push(MakeT(1, 1, i));
  StorageManager sm(1);
  sm.set_scope("c");
  sm.AttachStore(&store);
  sm.EnforceBudget({{&q, 1}});
  ASSERT_GT(store.live_records("spill/c/arc1"), 0u);

  q.Clear();
  EXPECT_EQ(store.live_records("spill/c/arc1"), 0u);

  // The channel cursor stays consistent: a later spill round-trips fine.
  for (uint64_t i = 7; i <= 12; ++i) q.Push(MakeT(2, 2, i));
  sm.EnforceBudget({{&q, 1}});
  Tuple t = q.Pop();
  EXPECT_EQ(t.seq(), 7u);
  EXPECT_EQ(GetInt(t, "A"), 2);
}

TEST_F(SpillStorageTest, SpillsLargestQueueFirst) {
  MemStorageFs fs;
  TieredStore store(&fs);
  ASSERT_OK(store.Open());

  StreamQueue small, big;
  for (uint64_t i = 1; i <= 2; ++i) small.Push(MakeT(1, 1, i));
  for (uint64_t i = 1; i <= 20; ++i) big.Push(MakeT(1, 1, i));

  StorageManager sm(small.bytes() + big.bytes() / 2);
  sm.AttachStore(&store);
  sm.EnforceBudget({{&small, 1}, {&big, 2}});
  EXPECT_EQ(small.spilled_count(), 0u);
  EXPECT_GT(big.spilled_count(), 0u);
}

}  // namespace
}  // namespace aurora
