// Message transport (§4.3): the multiplexed weighted scheduler shares the
// connection by prescribed weights; per-stream connections cost more and
// share equally regardless of weights.
#include <gtest/gtest.h>

#include "net/transport.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

struct TransportRig {
  Simulation sim;
  OverlayNetwork net{&sim};
  NodeId a, b;

  explicit TransportRig(double bandwidth = 1e6) {
    a = net.AddNode(NodeOptions{"a", 1.0, {}});
    b = net.AddNode(NodeOptions{"b", 1.0, {}});
    LinkOptions link;
    link.bandwidth_bytes_per_sec = bandwidth;
    link.latency = SimDuration::Millis(1);
    AURORA_CHECK(net.AddLink(a, b, link).ok());
  }

  Message Msg(size_t n) {
    Message m;
    m.kind = "t";
    m.payload.resize(n);
    return m;
  }
};

TransportOptions Mode(TransportMode mode) {
  TransportOptions opts;
  opts.mode = mode;
  return opts;
}

TEST(TransportTest, DeliversInFifoOrderPerStream) {
  TransportRig rig;
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b,
               Mode(TransportMode::kMultiplexed));
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  std::vector<size_t> sizes;
  tx.SetDeliveryHandler([&](const std::string&, const Message& m) {
    sizes.push_back(m.payload.size());
  });
  for (size_t n : {10, 20, 30}) ASSERT_OK(tx.Send("s", rig.Msg(n)));
  rig.sim.RunAll();
  EXPECT_EQ(sizes, (std::vector<size_t>{10, 20, 30}));
  EXPECT_EQ(tx.delivered_count("s"), 3u);
}

TEST(TransportTest, UnregisteredStreamRejected) {
  TransportRig rig;
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b,
               Mode(TransportMode::kMultiplexed));
  EXPECT_TRUE(tx.Send("nope", rig.Msg(1)).IsNotFound());
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  EXPECT_TRUE(tx.RegisterStream("s", 1.0).IsAlreadyExists());
  EXPECT_TRUE(tx.RegisterStream("w", 0.0).IsInvalidArgument());
}

// Saturates the link from three streams with weights 1:2:4 and returns the
// per-stream delivered byte counts.
std::map<std::string, uint64_t> RunWeightedLoad(TransportMode mode) {
  TransportRig rig(/*bandwidth=*/100'000);  // slow link → backlog
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b, Mode(mode));
  AURORA_CHECK(tx.RegisterStream("w1", 1.0).ok());
  AURORA_CHECK(tx.RegisterStream("w2", 2.0).ok());
  AURORA_CHECK(tx.RegisterStream("w4", 4.0).ok());
  // Offer far more than the link can carry in the measurement window.
  for (int i = 0; i < 300; ++i) {
    for (const char* s : {"w1", "w2", "w4"}) {
      (void)tx.Send(s, [&] {
        Message m;
        m.kind = "t";
        m.payload.resize(160);
        return m;
      }());
    }
  }
  rig.sim.RunUntil(SimTime::Seconds(0.5));  // deliver ~50 KB of ~180 KB
  return {{"w1", tx.delivered_bytes("w1")},
          {"w2", tx.delivered_bytes("w2")},
          {"w4", tx.delivered_bytes("w4")}};
}

TEST(TransportTest, MultiplexedSharesByWeight) {
  auto bytes = RunWeightedLoad(TransportMode::kMultiplexed);
  double total = 0;
  for (auto& [s, b] : bytes) total += static_cast<double>(b);
  ASSERT_GT(total, 0);
  // Shares track the 1:2:4 weights (±5 percentage points).
  EXPECT_NEAR(bytes["w1"] / total, 1.0 / 7.0, 0.05);
  EXPECT_NEAR(bytes["w2"] / total, 2.0 / 7.0, 0.05);
  EXPECT_NEAR(bytes["w4"] / total, 4.0 / 7.0, 0.05);
}

TEST(TransportTest, PerStreamConnectionsIgnoreWeights) {
  auto bytes = RunWeightedLoad(TransportMode::kPerStreamConnections);
  double total = 0;
  for (auto& [s, b] : bytes) total += static_cast<double>(b);
  ASSERT_GT(total, 0);
  // Round-robin TCP-style sharing: everyone gets ~1/3 despite the weights.
  EXPECT_NEAR(bytes["w1"] / total, 1.0 / 3.0, 0.05);
  EXPECT_NEAR(bytes["w4"] / total, 1.0 / 3.0, 0.05);
}

TEST(TransportTest, PerStreamModeCostsMoreOverhead) {
  auto run = [](TransportMode mode, int streams) {
    TransportRig rig;
    Transport tx(&rig.sim, &rig.net, rig.a, rig.b, Mode(mode));
    for (int s = 0; s < streams; ++s) {
      AURORA_CHECK(tx.RegisterStream("s" + std::to_string(s), 1.0).ok());
    }
    for (int i = 0; i < 50; ++i) {
      for (int s = 0; s < streams; ++s) {
        Message m;
        m.kind = "t";
        m.payload.resize(100);
        (void)tx.Send("s" + std::to_string(s), std::move(m));
      }
    }
    rig.sim.RunAll();
    return tx.overhead_bytes();
  };
  // "As the number of message streams grows, the overhead of running
  //  several TCP connections becomes prohibitive" (§4.3).
  uint64_t mux = run(TransportMode::kMultiplexed, 20);
  uint64_t per_stream = run(TransportMode::kPerStreamConnections, 20);
  EXPECT_GT(per_stream, mux);
}

TEST(TransportTest, QueueAccounting) {
  TransportRig rig(/*bandwidth=*/1'000);  // very slow
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b,
               Mode(TransportMode::kMultiplexed));
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  for (int i = 0; i < 10; ++i) ASSERT_OK(tx.Send("s", rig.Msg(100)));
  EXPECT_GT(tx.queued_messages(), 0u);
  EXPECT_GT(tx.queued_bytes(), 0u);
  rig.sim.RunAll();
  EXPECT_EQ(tx.queued_messages(), 0u);
  EXPECT_EQ(tx.delivered_count("s"), 10u);
}

}  // namespace
}  // namespace aurora
