// Message transport (§4.3): the multiplexed weighted scheduler shares the
// connection by prescribed weights; per-stream connections cost more and
// share equally regardless of weights.
#include <gtest/gtest.h>

#include "net/transport.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

struct TransportRig {
  Simulation sim;
  OverlayNetwork net{&sim};
  NodeId a, b;

  explicit TransportRig(double bandwidth = 1e6) {
    a = net.AddNode(NodeOptions{"a", 1.0, {}});
    b = net.AddNode(NodeOptions{"b", 1.0, {}});
    LinkOptions link;
    link.bandwidth_bytes_per_sec = bandwidth;
    link.latency = SimDuration::Millis(1);
    AURORA_CHECK(net.AddLink(a, b, link).ok());
  }

  Message Msg(size_t n) {
    Message m;
    m.kind = "t";
    m.payload.resize(n);
    return m;
  }
};

TransportOptions Mode(TransportMode mode) {
  TransportOptions opts;
  opts.mode = mode;
  return opts;
}

TEST(TransportTest, DeliversInFifoOrderPerStream) {
  TransportRig rig;
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b,
               Mode(TransportMode::kMultiplexed));
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  std::vector<size_t> sizes;
  tx.SetDeliveryHandler([&](const std::string&, const Message& m) {
    sizes.push_back(m.payload.size());
  });
  for (size_t n : {10, 20, 30}) ASSERT_OK(tx.Send("s", rig.Msg(n)));
  rig.sim.RunAll();
  EXPECT_EQ(sizes, (std::vector<size_t>{10, 20, 30}));
  EXPECT_EQ(tx.delivered_count("s"), 3u);
}

TEST(TransportTest, UnregisteredStreamRejected) {
  TransportRig rig;
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b,
               Mode(TransportMode::kMultiplexed));
  EXPECT_TRUE(tx.Send("nope", rig.Msg(1)).IsNotFound());
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  EXPECT_TRUE(tx.RegisterStream("s", 1.0).IsAlreadyExists());
  EXPECT_TRUE(tx.RegisterStream("w", 0.0).IsInvalidArgument());
}

// Saturates the link from three streams with weights 1:2:4 and returns the
// per-stream delivered byte counts.
std::map<std::string, uint64_t> RunWeightedLoad(TransportMode mode) {
  TransportRig rig(/*bandwidth=*/100'000);  // slow link → backlog
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b, Mode(mode));
  AURORA_CHECK(tx.RegisterStream("w1", 1.0).ok());
  AURORA_CHECK(tx.RegisterStream("w2", 2.0).ok());
  AURORA_CHECK(tx.RegisterStream("w4", 4.0).ok());
  // Offer far more than the link can carry in the measurement window.
  for (int i = 0; i < 300; ++i) {
    for (const char* s : {"w1", "w2", "w4"}) {
      (void)tx.Send(s, [&] {
        Message m;
        m.kind = "t";
        m.payload.resize(160);
        return m;
      }());
    }
  }
  rig.sim.RunUntil(SimTime::Seconds(0.5));  // deliver ~50 KB of ~180 KB
  return {{"w1", tx.delivered_bytes("w1")},
          {"w2", tx.delivered_bytes("w2")},
          {"w4", tx.delivered_bytes("w4")}};
}

TEST(TransportTest, MultiplexedSharesByWeight) {
  auto bytes = RunWeightedLoad(TransportMode::kMultiplexed);
  double total = 0;
  for (auto& [s, b] : bytes) total += static_cast<double>(b);
  ASSERT_GT(total, 0);
  // Shares track the 1:2:4 weights (±5 percentage points).
  EXPECT_NEAR(bytes["w1"] / total, 1.0 / 7.0, 0.05);
  EXPECT_NEAR(bytes["w2"] / total, 2.0 / 7.0, 0.05);
  EXPECT_NEAR(bytes["w4"] / total, 4.0 / 7.0, 0.05);
}

TEST(TransportTest, PerStreamConnectionsIgnoreWeights) {
  auto bytes = RunWeightedLoad(TransportMode::kPerStreamConnections);
  double total = 0;
  for (auto& [s, b] : bytes) total += static_cast<double>(b);
  ASSERT_GT(total, 0);
  // Round-robin TCP-style sharing: everyone gets ~1/3 despite the weights.
  EXPECT_NEAR(bytes["w1"] / total, 1.0 / 3.0, 0.05);
  EXPECT_NEAR(bytes["w4"] / total, 1.0 / 3.0, 0.05);
}

TEST(TransportTest, PerStreamModeCostsMoreOverhead) {
  auto run = [](TransportMode mode, int streams) {
    TransportRig rig;
    Transport tx(&rig.sim, &rig.net, rig.a, rig.b, Mode(mode));
    for (int s = 0; s < streams; ++s) {
      AURORA_CHECK(tx.RegisterStream("s" + std::to_string(s), 1.0).ok());
    }
    for (int i = 0; i < 50; ++i) {
      for (int s = 0; s < streams; ++s) {
        Message m;
        m.kind = "t";
        m.payload.resize(100);
        (void)tx.Send("s" + std::to_string(s), std::move(m));
      }
    }
    rig.sim.RunAll();
    return tx.overhead_bytes();
  };
  // "As the number of message streams grows, the overhead of running
  //  several TCP connections becomes prohibitive" (§4.3).
  uint64_t mux = run(TransportMode::kMultiplexed, 20);
  uint64_t per_stream = run(TransportMode::kPerStreamConnections, 20);
  EXPECT_GT(per_stream, mux);
}

// ---- Tuple trains --------------------------------------------------------

TEST(TransportTrainTest, CoalescesIntoFramesAndPreservesFifo) {
  TransportRig rig;
  TransportOptions opts = Mode(TransportMode::kMultiplexed);
  opts.train_size = 8;
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b, opts);
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  std::vector<size_t> sizes;
  tx.SetDeliveryHandler([&](const std::string&, const Message& m) {
    sizes.push_back(m.payload.size());
  });
  std::vector<size_t> sent;
  for (size_t i = 0; i < 16; ++i) {
    ASSERT_OK(tx.Send("s", rig.Msg(10 + i)));
    sent.push_back(10 + i);
  }
  rig.sim.RunAll();
  // One callback per original message, in FIFO order...
  EXPECT_EQ(sizes, sent);
  EXPECT_EQ(tx.delivered_count("s"), 16u);
  // ...but only 16/8 = 2 frames crossed the wire.
  EXPECT_EQ(tx.frames_sent(), 2u);
}

TEST(TransportTrainTest, PartialTrainFlushesAfterMaxDelay) {
  TransportRig rig;
  TransportOptions opts = Mode(TransportMode::kMultiplexed);
  opts.train_size = 8;
  opts.train_max_delay = SimDuration::Millis(5);
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b, opts);
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  size_t delivered = 0;
  tx.SetDeliveryHandler(
      [&](const std::string&, const Message&) { delivered++; });
  for (int i = 0; i < 3; ++i) ASSERT_OK(tx.Send("s", rig.Msg(50)));
  // Before the batching deadline nothing has departed.
  rig.sim.RunUntil(SimTime::Millis(2));
  EXPECT_EQ(tx.frames_sent(), 0u);
  rig.sim.RunAll();
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(tx.frames_sent(), 1u);
}

TEST(TransportTrainTest, TrainsCutFramesAndOverhead) {
  auto run = [](size_t train_size) {
    TransportRig rig;
    TransportOptions opts = Mode(TransportMode::kMultiplexed);
    opts.train_size = train_size;
    Transport tx(&rig.sim, &rig.net, rig.a, rig.b, opts);
    AURORA_CHECK(tx.RegisterStream("s", 1.0).ok());
    for (int i = 0; i < 64; ++i) (void)tx.Send("s", rig.Msg(120));
    rig.sim.RunAll();
    AURORA_CHECK(tx.delivered_count("s") == 64);
    return std::pair<uint64_t, uint64_t>(tx.frames_sent(),
                                         tx.overhead_bytes());
  };
  auto [frames1, over1] = run(1);
  auto [frames8, over8] = run(8);
  EXPECT_EQ(frames1, 64u);
  EXPECT_EQ(frames8, 8u);  // >= 2x fewer messages (8x here)
  EXPECT_LT(over8, over1);
}

TEST(TransportTrainTest, TupleCountsDriveTrainBudget) {
  TransportRig rig;
  TransportOptions opts = Mode(TransportMode::kMultiplexed);
  opts.train_size = 8;
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b, opts);
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  // Each message already carries 4 tuples: a train of 8 tuples = 2 messages.
  for (int i = 0; i < 4; ++i) {
    Message m = rig.Msg(80);
    m.tuple_count = 4;
    ASSERT_OK(tx.Send("s", std::move(m)));
  }
  rig.sim.RunAll();
  EXPECT_EQ(tx.delivered_count("s"), 4u);
  EXPECT_EQ(tx.frames_sent(), 2u);
}

// ---- Credit flow control -------------------------------------------------

TEST(TransportFlowTest, StallsAtCreditLimitAndResumesOnGrant) {
  TransportRig rig;
  TransportOptions opts = Mode(TransportMode::kMultiplexed);
  opts.credit_window_bytes = 500;
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b, opts);
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  for (int i = 0; i < 5; ++i) ASSERT_OK(tx.Send("s", rig.Msg(200)));
  // All five (1000 payload bytes) exceed the 500-byte window: the producer
  // is told to stop...
  EXPECT_TRUE(tx.StreamBlocked("s"));
  rig.sim.RunUntil(SimTime::Millis(200));
  // ...and only the first two messages (400 bytes <= 500) were dispatched.
  EXPECT_EQ(tx.delivered_count("s"), 2u);
  EXPECT_EQ(tx.sent_offset("s"), 400u);
  EXPECT_GE(tx.credit_stalls(), 1u);
  // A cumulative grant re-opens the window; a stale one is a no-op.
  tx.GrantCredit("s", 300);
  EXPECT_EQ(tx.credit_limit("s"), 500u);
  tx.GrantCredit("s", 1200);
  rig.sim.RunAll();
  EXPECT_EQ(tx.delivered_count("s"), 5u);
  // 1000 enqueued < 1200 granted: the producer has headroom again.
  EXPECT_FALSE(tx.StreamBlocked("s"));
}

TEST(TransportFlowTest, StalledStreamProbesWithSentOffset) {
  TransportRig rig;
  TransportOptions opts = Mode(TransportMode::kMultiplexed);
  opts.credit_window_bytes = 250;
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b, opts);
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  std::vector<uint64_t> probed;
  tx.SetFlowProbeHandler([&](const std::string& stream, uint64_t off) {
    EXPECT_EQ(stream, "s");
    probed.push_back(off);
  });
  for (int i = 0; i < 3; ++i) ASSERT_OK(tx.Send("s", rig.Msg(200)));
  rig.sim.RunUntil(SimTime::Millis(200));
  // Only the first message fit the window; the stall produced probes that
  // carry the cumulative sent offset (so the receiver can heal lost data).
  EXPECT_EQ(tx.delivered_count("s"), 1u);
  ASSERT_GE(probed.size(), 2u);
  EXPECT_EQ(probed.back(), 200u);
}

TEST(TransportFlowTest, PartitionPausesInsteadOfDropping) {
  TransportRig rig;
  TransportOptions opts = Mode(TransportMode::kMultiplexed);
  opts.credit_window_bytes = 1 << 20;
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b, opts);
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  size_t delivered = 0;
  tx.SetDeliveryHandler(
      [&](const std::string&, const Message&) { delivered++; });
  ASSERT_OK(rig.net.SetLinkUp(rig.a, rig.b, false));
  for (int i = 0; i < 6; ++i) ASSERT_OK(tx.Send("s", rig.Msg(100)));
  rig.sim.RunUntil(SimTime::Millis(300));
  // While partitioned the transport holds its queue: nothing delivered,
  // nothing handed to the network to be dropped.
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(rig.net.MessagesDropped(), 0u);
  EXPECT_EQ(tx.queued_messages(), 6u);
  ASSERT_OK(rig.net.SetLinkUp(rig.a, rig.b, true));
  rig.sim.RunAll();
  // After heal: every message exactly once, no loss, no duplicates.
  EXPECT_EQ(delivered, 6u);
  EXPECT_EQ(rig.net.MessagesDropped(), 0u);
}

TEST(TransportTest, QueueAccounting) {
  TransportRig rig(/*bandwidth=*/1'000);  // very slow
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b,
               Mode(TransportMode::kMultiplexed));
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  for (int i = 0; i < 10; ++i) ASSERT_OK(tx.Send("s", rig.Msg(100)));
  EXPECT_GT(tx.queued_messages(), 0u);
  EXPECT_GT(tx.queued_bytes(), 0u);
  rig.sim.RunAll();
  EXPECT_EQ(tx.queued_messages(), 0u);
  EXPECT_EQ(tx.delivered_count("s"), 10u);
}

}  // namespace
}  // namespace aurora
