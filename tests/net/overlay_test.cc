// Overlay network (§4): bandwidth serialization, propagation latency,
// multi-hop routing, and failure-induced drops.
#include <gtest/gtest.h>

#include "net/overlay_network.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

Message Msg(size_t payload_bytes) {
  Message m;
  m.kind = "t";
  m.payload.resize(payload_bytes);
  return m;
}

TEST(OverlayTest, LatencyAndBandwidthTiming) {
  Simulation sim;
  OverlayNetwork net(&sim);
  NodeId a = net.AddNode(NodeOptions{"a", 1.0, {}});
  NodeId b = net.AddNode(NodeOptions{"b", 1.0, {}});
  LinkOptions link;
  link.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s
  link.latency = SimDuration::Millis(10);
  ASSERT_OK(net.AddLink(a, b, link));

  SimTime delivered;
  Message m = Msg(9'959);  // 9959 payload + 40 header + 1 kind = 10'000 bytes
  ASSERT_OK(net.Send(a, b, m, [&](const Message&) { delivered = sim.Now(); }));
  sim.RunAll();
  // 10 KB at 1 MB/s = 10 ms serialization + 10 ms propagation.
  EXPECT_NEAR(delivered.millis(), 20.0, 0.1);
  EXPECT_EQ(net.MessagesDelivered(), 1u);
  EXPECT_EQ(net.LinkBytesSent(a, b), 10'000u);
}

TEST(OverlayTest, LinkSerializesFifo) {
  Simulation sim;
  OverlayNetwork net(&sim);
  NodeId a = net.AddNode(NodeOptions{"a", 1.0, {}});
  NodeId b = net.AddNode(NodeOptions{"b", 1.0, {}});
  LinkOptions link;
  link.bandwidth_bytes_per_sec = 1e6;
  link.latency = SimDuration::Millis(0);
  ASSERT_OK(net.AddLink(a, b, link));
  std::vector<double> arrivals;
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(net.Send(a, b, Msg(9'959),
                       [&](const Message&) { arrivals.push_back(sim.Now().millis()); }));
  }
  sim.RunAll();
  ASSERT_EQ(arrivals.size(), 3u);
  // Back-to-back serializations: ~10, 20, 30 ms.
  EXPECT_NEAR(arrivals[0], 10.0, 0.5);
  EXPECT_NEAR(arrivals[1], 20.0, 0.5);
  EXPECT_NEAR(arrivals[2], 30.0, 0.5);
}

TEST(OverlayTest, MultiHopRouting) {
  Simulation sim;
  OverlayNetwork net(&sim);
  NodeId a = net.AddNode(NodeOptions{"a", 1.0, {}});
  NodeId b = net.AddNode(NodeOptions{"b", 1.0, {}});
  NodeId c = net.AddNode(NodeOptions{"c", 1.0, {}});
  LinkOptions link;
  link.latency = SimDuration::Millis(5);
  ASSERT_OK(net.AddLink(a, b, link));
  ASSERT_OK(net.AddLink(b, c, link));  // no direct a-c link

  bool delivered = false;
  ASSERT_OK(net.Send(a, c, Msg(100), [&](const Message& m) {
    delivered = true;
    EXPECT_EQ(m.src, a);
    EXPECT_EQ(m.dst, c);
  }));
  sim.RunAll();
  EXPECT_TRUE(delivered);
  // Both hops carried the bytes.
  EXPECT_GT(net.LinkBytesSent(a, b), 0u);
  EXPECT_GT(net.LinkBytesSent(b, c), 0u);
  EXPECT_GE(sim.Now().millis(), 10.0);  // two propagation delays
}

TEST(OverlayTest, NoRouteDropsMessage) {
  Simulation sim;
  OverlayNetwork net(&sim);
  NodeId a = net.AddNode(NodeOptions{"a", 1.0, {}});
  NodeId b = net.AddNode(NodeOptions{"b", 1.0, {}});
  bool delivered = false;
  ASSERT_OK(net.Send(a, b, Msg(10), [&](const Message&) { delivered = true; }));
  sim.RunAll();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.MessagesDropped(), 1u);
}

TEST(OverlayTest, DownNodeDropsInFlight) {
  Simulation sim;
  OverlayNetwork net(&sim);
  NodeId a = net.AddNode(NodeOptions{"a", 1.0, {}});
  NodeId b = net.AddNode(NodeOptions{"b", 1.0, {}});
  LinkOptions link;
  link.latency = SimDuration::Millis(10);
  ASSERT_OK(net.AddLink(a, b, link));
  bool delivered = false;
  ASSERT_OK(net.Send(a, b, Msg(10), [&](const Message&) { delivered = true; }));
  // b dies while the message is on the wire.
  sim.Schedule(SimDuration::Millis(1), [&]() { net.SetNodeUp(b, false); });
  sim.RunAll();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.MessagesDropped(), 1u);
  // After b recovers, traffic flows again.
  net.SetNodeUp(b, true);
  ASSERT_OK(net.Send(a, b, Msg(10), [&](const Message&) { delivered = true; }));
  sim.RunAll();
  EXPECT_TRUE(delivered);
}

TEST(OverlayTest, LocalDeliveryBypassesLinks) {
  Simulation sim;
  OverlayNetwork net(&sim);
  NodeId a = net.AddNode(NodeOptions{"a", 1.0, {}});
  bool delivered = false;
  ASSERT_OK(net.Send(a, a, Msg(10), [&](const Message&) { delivered = true; }));
  sim.RunAll();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.TotalBytesSent(), 0u);
}

TEST(OverlayTest, CapabilitiesAndLookup) {
  Simulation sim;
  OverlayNetwork net(&sim);
  NodeId s = net.AddNode(NodeOptions{"sensor", 0.1, {"filter"}});
  NodeId full = net.AddNode(NodeOptions{"server", 1.0, {}});
  EXPECT_TRUE(net.NodeSupports(s, "filter"));
  EXPECT_FALSE(net.NodeSupports(s, "tumble"));
  EXPECT_TRUE(net.NodeSupports(full, "join"));
  ASSERT_OK_AND_ASSIGN(NodeId found, net.FindNode("sensor"));
  EXPECT_EQ(found, s);
  EXPECT_TRUE(net.FindNode("nope").status().IsNotFound());
}

}  // namespace
}  // namespace aurora
