// Edge cases of the tuple-train dispatcher and credit-based flow control:
// degenerate train sizes, messages larger than the whole credit window
// (the documented overdraft exception), and the train flush deadline at
// its exact boundary.
#include <gtest/gtest.h>

#include "net/transport.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

struct TransportRig {
  Simulation sim;
  OverlayNetwork net{&sim};
  NodeId a, b;

  explicit TransportRig(double bandwidth = 1e6) {
    a = net.AddNode(NodeOptions{"a", 1.0, {}});
    b = net.AddNode(NodeOptions{"b", 1.0, {}});
    LinkOptions link;
    link.bandwidth_bytes_per_sec = bandwidth;
    link.latency = SimDuration::Millis(1);
    AURORA_CHECK(net.AddLink(a, b, link).ok());
  }

  Message Msg(size_t n) {
    Message m;
    m.kind = "t";
    m.payload.resize(n);
    return m;
  }
};

// train_size 0 must behave exactly like 1 (batching disabled): one frame
// per message, nothing waiting on a flush deadline.
TEST(TransportEdgeTest, TrainSizeZeroAndOneDispatchUnbatched) {
  for (size_t train_size : {size_t{0}, size_t{1}}) {
    TransportRig rig;
    TransportOptions opts;
    opts.train_size = train_size;
    Transport tx(&rig.sim, &rig.net, rig.a, rig.b, opts);
    ASSERT_OK(tx.RegisterStream("s", 1.0));
    size_t delivered = 0;
    tx.SetDeliveryHandler([&](const std::string&, const Message& m) {
      EXPECT_LE(m.train_count, 1u) << "train_size=" << train_size;
      ++delivered;
    });
    for (int i = 0; i < 5; ++i) ASSERT_OK(tx.Send("s", rig.Msg(10)));
    rig.sim.RunFor(SimDuration::Seconds(1));
    EXPECT_EQ(delivered, 5u) << "train_size=" << train_size;
    EXPECT_EQ(tx.frames_sent(), 5u) << "train_size=" << train_size;
  }
}

// A message whose payload exceeds the whole credit window can never fit
// under any grant. The documented exception lets it overdraw the window
// once everything before it is credited — otherwise the stream would
// deadlock on its first oversized tuple.
TEST(TransportEdgeTest, OversizedMessageOverdrawsInsteadOfDeadlocking) {
  TransportRig rig;
  TransportOptions opts;
  opts.credit_window_bytes = 64;
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b, opts);
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  size_t delivered = 0;
  tx.SetDeliveryHandler(
      [&](const std::string&, const Message&) { ++delivered; });

  // First oversized message: queued-before bytes (0) are fully credited by
  // the registration grant, so it dispatches despite payload > window.
  ASSERT_OK(tx.Send("s", rig.Msg(200)));
  rig.sim.RunFor(SimDuration::Millis(20));
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(tx.sent_offset("s"), 200u);

  // Second oversized message: its start offset (200) is past the 64-byte
  // grant, so the exception does not apply — it stalls like any other
  // over-limit head.
  ASSERT_OK(tx.Send("s", rig.Msg(200)));
  rig.sim.RunFor(SimDuration::Millis(100));
  EXPECT_EQ(delivered, 1u);
  EXPECT_GT(tx.credit_stalls(), 0u);

  // A grant that covers every byte queued before it re-enables the
  // exception and the message departs.
  tx.GrantCredit("s", 201);
  rig.sim.RunFor(SimDuration::Millis(20));
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(tx.sent_offset("s"), 400u);
}

// A grant equal to the head's start offset is not enough: the overdraft
// exception needs strictly more (every prior byte credited *and* window
// space), so a zero-window-style boundary grant keeps the stream stalled.
TEST(TransportEdgeTest, OversizedHeadNeedsStrictlyPositiveWindow) {
  TransportRig rig;
  TransportOptions opts;
  opts.credit_window_bytes = 64;
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b, opts);
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  size_t delivered = 0;
  tx.SetDeliveryHandler(
      [&](const std::string&, const Message&) { ++delivered; });
  ASSERT_OK(tx.Send("s", rig.Msg(200)));
  ASSERT_OK(tx.Send("s", rig.Msg(200)));
  rig.sim.RunFor(SimDuration::Millis(50));
  ASSERT_EQ(delivered, 1u);

  tx.GrantCredit("s", 200);  // exactly the second head's start offset
  rig.sim.RunFor(SimDuration::Millis(50));
  EXPECT_EQ(delivered, 1u) << "boundary grant must not release the head";

  tx.GrantCredit("s", 201);
  rig.sim.RunFor(SimDuration::Millis(50));
  EXPECT_EQ(delivered, 2u);
}

// A partial train departs exactly at train_max_delay after its oldest
// message was enqueued — not one event earlier.
TEST(TransportEdgeTest, FlushDeadlineFiresExactlyAtTrainMaxDelay) {
  TransportRig rig;
  TransportOptions opts;
  opts.train_size = 10;  // never filled by this test
  opts.train_max_delay = SimDuration::Millis(2);
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b, opts);
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  size_t delivered = 0;
  tx.SetDeliveryHandler(
      [&](const std::string&, const Message&) { ++delivered; });

  ASSERT_OK(tx.Send("s", rig.Msg(10)));
  ASSERT_OK(tx.Send("s", rig.Msg(10)));
  SimTime enqueue = rig.sim.Now();

  rig.sim.RunUntil(enqueue + SimDuration::Millis(2) -
                   SimDuration::Micros(1));
  EXPECT_EQ(tx.frames_sent(), 0u) << "train departed before its deadline";

  rig.sim.RunUntil(enqueue + SimDuration::Millis(2));
  EXPECT_EQ(tx.frames_sent(), 1u) << "train missed its flush deadline";

  rig.sim.RunFor(SimDuration::Millis(20));
  EXPECT_EQ(delivered, 2u);  // one frame, both messages unpacked
}

// Filling the train budget dispatches immediately; the flush deadline only
// governs partial trains.
TEST(TransportEdgeTest, FullTrainDoesNotWaitForDeadline) {
  TransportRig rig;
  TransportOptions opts;
  opts.train_size = 3;
  opts.train_max_delay = SimDuration::Millis(2);
  Transport tx(&rig.sim, &rig.net, rig.a, rig.b, opts);
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  for (int i = 0; i < 3; ++i) ASSERT_OK(tx.Send("s", rig.Msg(10)));
  rig.sim.RunUntil(rig.sim.Now() + SimDuration::Micros(1));
  EXPECT_EQ(tx.frames_sent(), 1u);
}

}  // namespace
}  // namespace aurora
