// StreamQueue spill accounting and ConnectionPoint historical storage
// (paper §2.2–2.3).
#include <gtest/gtest.h>

#include "stream/connection_point.h"
#include "stream/stream_queue.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

Tuple T(int64_t a, int64_t b, int64_t ts_ms = 0) {
  Tuple t = MakeTuple(SchemaAB(), {Value(a), Value(b)});
  t.set_timestamp(SimTime::Millis(ts_ms));
  return t;
}

TEST(StreamQueueTest, FifoOrder) {
  StreamQueue q;
  for (int i = 0; i < 5; ++i) q.Push(T(i, 0));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.Pop().Get("A").AsInt(), i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(StreamQueueTest, ByteAccounting) {
  StreamQueue q;
  Tuple t = T(1, 2);
  size_t each = t.WireSize();
  q.Push(t);
  q.Push(t);
  EXPECT_EQ(q.bytes(), 2 * each);
  q.Pop();
  EXPECT_EQ(q.bytes(), each);
}

TEST(StreamQueueTest, SpillMarksOldestAndChargesReads) {
  StreamQueue q;
  for (int i = 0; i < 10; ++i) q.Push(T(i, 0));
  size_t freed = q.Spill(4);
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(q.spilled_count(), 4u);
  EXPECT_EQ(q.resident_bytes(), q.bytes() - freed);
  // Popping the spilled prefix counts disk reads.
  for (int i = 0; i < 4; ++i) q.Pop();
  EXPECT_EQ(q.unspill_reads(), 4u);
  EXPECT_EQ(q.spilled_count(), 0u);
  // Resident pops are free.
  q.Pop();
  EXPECT_EQ(q.unspill_reads(), 4u);
}

TEST(StreamQueueTest, SpillMoreThanResidentClamps) {
  StreamQueue q;
  for (int i = 0; i < 3; ++i) q.Push(T(i, 0));
  q.Spill(100);
  EXPECT_EQ(q.spilled_count(), 3u);
  EXPECT_EQ(q.resident_bytes(), 0u);
}

TEST(ConnectionPointTest, RecordsHistory) {
  ConnectionPoint cp("cp", RetentionPolicy{});
  for (int i = 0; i < 5; ++i) cp.Record(T(i, i), SimTime::Millis(i));
  EXPECT_EQ(cp.history_size(), 5u);
  EXPECT_GT(cp.history_bytes(), 0u);
}

TEST(ConnectionPointTest, CountRetentionEvictsOldest) {
  RetentionPolicy policy;
  policy.max_tuples = 3;
  ConnectionPoint cp("cp", policy);
  for (int i = 0; i < 10; ++i) cp.Record(T(i, 0), SimTime::Millis(i));
  ASSERT_EQ(cp.history_size(), 3u);
  EXPECT_EQ(cp.history().front().Get("A").AsInt(), 7);
}

TEST(ConnectionPointTest, AgeRetentionEvictsExpired) {
  RetentionPolicy policy;
  policy.max_age = SimDuration::Millis(10);
  ConnectionPoint cp("cp", policy);
  for (int i = 0; i < 20; ++i) cp.Record(T(i, 0, i), SimTime::Millis(i));
  // At t=19ms, tuples older than 9ms are gone.
  EXPECT_LE(cp.history_size(), 11u);
  EXPECT_GE(cp.history().front().Get("A").AsInt(), 9);
}

TEST(ConnectionPointTest, AdHocQueryOverHistory) {
  ConnectionPoint cp("cp", RetentionPolicy{});
  for (int i = 0; i < 10; ++i) cp.Record(T(i, i % 2), SimTime());
  std::vector<int64_t> seen;
  size_t matched = cp.QueryHistory(
      [](const Tuple& t) { return t.Get("B").AsInt() == 1; },
      [&](const Tuple& t) { seen.push_back(t.Get("A").AsInt()); });
  EXPECT_EQ(matched, 5u);
  EXPECT_EQ(seen, (std::vector<int64_t>{1, 3, 5, 7, 9}));
}

TEST(ConnectionPointTest, SnapshotAndLoadForSplitMigration) {
  // §5.2 "Handling Connection Points": splitting a CP copies its data.
  ConnectionPoint cp("cp", RetentionPolicy{});
  for (int i = 0; i < 4; ++i) cp.Record(T(i, 0), SimTime());
  std::vector<Tuple> snapshot = cp.SnapshotHistory();
  ConnectionPoint replica("cp2", RetentionPolicy{});
  replica.LoadHistory(snapshot);
  EXPECT_EQ(replica.history_size(), 4u);
  EXPECT_EQ(replica.history_bytes(), cp.history_bytes());
}

TEST(ConnectionPointTest, ChokeFlag) {
  ConnectionPoint cp("cp", RetentionPolicy{});
  EXPECT_FALSE(cp.choked());
  cp.Choke();
  EXPECT_TRUE(cp.choked());
  cp.Unchoke();
  EXPECT_FALSE(cp.choked());
}

// ---- Guard / invariant regressions ---------------------------------------

#ifndef NDEBUG
TEST(StreamQueueDeathTest, PopOnEmptyIsCaught) {
  StreamQueue q;
  EXPECT_DEATH(q.Pop(), "items_");
}

TEST(StreamQueueDeathTest, FrontOnEmptyIsCaught) {
  StreamQueue q;
  EXPECT_DEATH(q.Front(), "items_");
}
#endif

TEST(StreamQueueTest, InterleavedSpillPopClearNeverUnderflows) {
  // Regression for counter underflow: drive every state transition that
  // touches bytes_/spilled_count_/spilled_bytes_ and check the invariants
  // (all derived accessors stay consistent and non-wrapped) throughout.
  StreamQueue q;
  auto check = [&q]() {
    EXPECT_LE(q.spilled_count(), q.size());
    EXPECT_LE(q.resident_bytes(), q.bytes());
    EXPECT_LT(q.bytes(), size_t{1} << 48) << "bytes_ underflowed";
    if (q.size() == 0) {
      EXPECT_EQ(q.bytes(), 0u);
      EXPECT_EQ(q.spilled_count(), 0u);
    }
  };
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) q.Push(T(i, round));
    check();
    q.Spill(3);
    check();
    for (int i = 0; i < 5; ++i) {
      q.Pop();
      check();
    }
    q.Spill(100);  // clamps to what's left
    check();
    while (!q.empty()) {
      q.Pop();
      check();
    }
    q.Push(T(99, 99));
    q.Clear();
    check();
  }
  // Clear after spill resets the spill accounting too.
  for (int i = 0; i < 4; ++i) q.Push(T(i, 0));
  q.Spill(4);
  q.Clear();
  check();
  EXPECT_EQ(q.resident_bytes(), 0u);
}

TEST(ConnectionPointTest, UnsubscribeSelfFromWithinCallbackIsSafe) {
  // Regression: Record() used to iterate subscribers_ with a range-for, so
  // a callback calling Unsubscribe invalidated the iterator mid-loop.
  ConnectionPoint cp("cp", RetentionPolicy{});
  int first_calls = 0;
  int last_calls = 0;
  int self_calls = 0;
  int self_token = 0;
  cp.Subscribe([&](const Tuple&, SimTime) { first_calls++; });
  self_token = cp.Subscribe([&](const Tuple&, SimTime) {
    self_calls++;
    cp.Unsubscribe(self_token);  // unsubscribe *self* mid-notification
  });
  cp.Subscribe([&](const Tuple&, SimTime) { last_calls++; });
  cp.Record(T(1, 1), SimTime());
  cp.Record(T(2, 2), SimTime());
  EXPECT_EQ(first_calls, 2);
  EXPECT_EQ(last_calls, 2);  // the later subscriber still got both tuples
  EXPECT_EQ(self_calls, 1);  // removed after its first delivery
  EXPECT_EQ(cp.num_subscribers(), 2u);
}

TEST(ConnectionPointTest, UnsubscribePeerFromWithinCallbackIsSafe) {
  ConnectionPoint cp("cp", RetentionPolicy{});
  int victim_calls = 0;
  int victim_token = cp.Subscribe([&](const Tuple&, SimTime) {
    victim_calls++;
  });
  // Subscribed after the victim but unsubscribes it during delivery of the
  // *first* tuple; the victim (earlier in the list) already ran this pass.
  cp.Subscribe([&](const Tuple&, SimTime) { cp.Unsubscribe(victim_token); });
  cp.Record(T(1, 1), SimTime());
  cp.Record(T(2, 2), SimTime());
  EXPECT_EQ(victim_calls, 1);
  EXPECT_EQ(cp.num_subscribers(), 1u);
}

TEST(ConnectionPointTest, SubscribeFromWithinCallbackStartsNextTuple) {
  // A callback adding a subscriber must not invalidate the live iteration
  // (vector reallocation); the newcomer first sees the *next* tuple.
  ConnectionPoint cp("cp", RetentionPolicy{});
  int newcomer_calls = 0;
  bool added = false;
  for (int i = 0; i < 6; ++i) {
    // Extra subscribers make push_back reallocation likely.
    cp.Subscribe([](const Tuple&, SimTime) {});
  }
  cp.Subscribe([&](const Tuple&, SimTime) {
    if (!added) {
      added = true;
      cp.Subscribe([&](const Tuple&, SimTime) { newcomer_calls++; });
    }
  });
  cp.Record(T(1, 1), SimTime());
  EXPECT_EQ(newcomer_calls, 0);
  cp.Record(T(2, 2), SimTime());
  EXPECT_EQ(newcomer_calls, 1);
}

}  // namespace
}  // namespace aurora
