// StreamQueue spill accounting and ConnectionPoint historical storage
// (paper §2.2–2.3).
#include <gtest/gtest.h>

#include "stream/connection_point.h"
#include "stream/stream_queue.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

Tuple T(int64_t a, int64_t b, int64_t ts_ms = 0) {
  Tuple t = MakeTuple(SchemaAB(), {Value(a), Value(b)});
  t.set_timestamp(SimTime::Millis(ts_ms));
  return t;
}

TEST(StreamQueueTest, FifoOrder) {
  StreamQueue q;
  for (int i = 0; i < 5; ++i) q.Push(T(i, 0));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.Pop().Get("A").AsInt(), i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(StreamQueueTest, ByteAccounting) {
  StreamQueue q;
  Tuple t = T(1, 2);
  size_t each = t.WireSize();
  q.Push(t);
  q.Push(t);
  EXPECT_EQ(q.bytes(), 2 * each);
  q.Pop();
  EXPECT_EQ(q.bytes(), each);
}

TEST(StreamQueueTest, SpillMarksOldestAndChargesReads) {
  StreamQueue q;
  for (int i = 0; i < 10; ++i) q.Push(T(i, 0));
  size_t freed = q.Spill(4);
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(q.spilled_count(), 4u);
  EXPECT_EQ(q.resident_bytes(), q.bytes() - freed);
  // Popping the spilled prefix counts disk reads.
  for (int i = 0; i < 4; ++i) q.Pop();
  EXPECT_EQ(q.unspill_reads(), 4u);
  EXPECT_EQ(q.spilled_count(), 0u);
  // Resident pops are free.
  q.Pop();
  EXPECT_EQ(q.unspill_reads(), 4u);
}

TEST(StreamQueueTest, SpillMoreThanResidentClamps) {
  StreamQueue q;
  for (int i = 0; i < 3; ++i) q.Push(T(i, 0));
  q.Spill(100);
  EXPECT_EQ(q.spilled_count(), 3u);
  EXPECT_EQ(q.resident_bytes(), 0u);
}

TEST(ConnectionPointTest, RecordsHistory) {
  ConnectionPoint cp("cp", RetentionPolicy{});
  for (int i = 0; i < 5; ++i) cp.Record(T(i, i), SimTime::Millis(i));
  EXPECT_EQ(cp.history_size(), 5u);
  EXPECT_GT(cp.history_bytes(), 0u);
}

TEST(ConnectionPointTest, CountRetentionEvictsOldest) {
  RetentionPolicy policy;
  policy.max_tuples = 3;
  ConnectionPoint cp("cp", policy);
  for (int i = 0; i < 10; ++i) cp.Record(T(i, 0), SimTime::Millis(i));
  ASSERT_EQ(cp.history_size(), 3u);
  EXPECT_EQ(cp.history().front().Get("A").AsInt(), 7);
}

TEST(ConnectionPointTest, AgeRetentionEvictsExpired) {
  RetentionPolicy policy;
  policy.max_age = SimDuration::Millis(10);
  ConnectionPoint cp("cp", policy);
  for (int i = 0; i < 20; ++i) cp.Record(T(i, 0, i), SimTime::Millis(i));
  // At t=19ms, tuples older than 9ms are gone.
  EXPECT_LE(cp.history_size(), 11u);
  EXPECT_GE(cp.history().front().Get("A").AsInt(), 9);
}

TEST(ConnectionPointTest, AdHocQueryOverHistory) {
  ConnectionPoint cp("cp", RetentionPolicy{});
  for (int i = 0; i < 10; ++i) cp.Record(T(i, i % 2), SimTime());
  std::vector<int64_t> seen;
  size_t matched = cp.QueryHistory(
      [](const Tuple& t) { return t.Get("B").AsInt() == 1; },
      [&](const Tuple& t) { seen.push_back(t.Get("A").AsInt()); });
  EXPECT_EQ(matched, 5u);
  EXPECT_EQ(seen, (std::vector<int64_t>{1, 3, 5, 7, 9}));
}

TEST(ConnectionPointTest, SnapshotAndLoadForSplitMigration) {
  // §5.2 "Handling Connection Points": splitting a CP copies its data.
  ConnectionPoint cp("cp", RetentionPolicy{});
  for (int i = 0; i < 4; ++i) cp.Record(T(i, 0), SimTime());
  std::vector<Tuple> snapshot = cp.SnapshotHistory();
  ConnectionPoint replica("cp2", RetentionPolicy{});
  replica.LoadHistory(snapshot);
  EXPECT_EQ(replica.history_size(), 4u);
  EXPECT_EQ(replica.history_bytes(), cp.history_bytes());
}

TEST(ConnectionPointTest, ChokeFlag) {
  ConnectionPoint cp("cp", RetentionPolicy{});
  EXPECT_FALSE(cp.choked());
  cp.Choke();
  EXPECT_TRUE(cp.choked());
  cp.Unchoke();
  EXPECT_FALSE(cp.choked());
}

}  // namespace
}  // namespace aurora
