// Property sweep (experiment C9 + Fig. 5/6 transparency): for random
// streams, every combinable aggregate, and several routing predicates, a
// split box must produce exactly the multiset of results the unsplit box
// produces.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "distributed/box_splitter.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

enum class PredicateKind { kContent, kHash };

struct SplitCase {
  const char* agg;         // aggregate of the split Tumble
  PredicateKind predicate;
  double zipf_skew;        // groupby key skew
  int tuples;
  int split_after;         // tuples processed before the split
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<SplitCase>& info) {
  const SplitCase& c = info.param;
  std::string name = std::string(c.agg) +
                     (c.predicate == PredicateKind::kContent ? "_content"
                                                             : "_hash") +
                     "_skew" + std::to_string(static_cast<int>(c.zipf_skew * 10)) +
                     "_n" + std::to_string(c.tuples) + "_at" +
                     std::to_string(c.split_after);
  return name;
}

class SplitTransparencyTest : public ::testing::TestWithParam<SplitCase> {};

// Runs the Figure-2-style query (Tumble agg(B) groupby A) over `stream`,
// optionally splitting after `split_after` tuples; returns the multiset of
// (A, Result) pairs after draining everything.
std::vector<std::pair<int64_t, int64_t>> RunQuery(
    const std::vector<Tuple>& stream, const SplitCase& c, bool split) {
  Simulation sim;
  OverlayNetwork net(&sim);
  AuroraStarSystem system(&sim, &net, StarOptions{});
  NodeId m1 = *system.AddNode(NodeOptions{"m1", 1.0, {}});
  NodeId m2 = *system.AddNode(NodeOptions{"m2", 1.0, {}});
  net.FullMesh(LinkOptions{});
  GlobalQuery q;
  AURORA_CHECK(q.AddInput("in", SchemaAB()).ok());
  AURORA_CHECK(q.AddBox("t", TumbleSpec(c.agg, "B", {"A"})).ok());
  AURORA_CHECK(q.AddOutput("out").ok());
  AURORA_CHECK(q.ConnectInputToBox("in", "t").ok());
  AURORA_CHECK(q.ConnectBoxToOutput("t", 0, "out").ok());
  auto deployed_result = DeployQuery(&system, q, {{"t", m1}});
  AURORA_CHECK(deployed_result.ok());
  DeployedQuery deployed = *std::move(deployed_result);
  std::vector<std::pair<int64_t, int64_t>> out;
  AURORA_CHECK(system
                   .CollectOutput(m1, "out",
                                  [&](const Tuple& t, SimTime) {
                                    out.emplace_back(t.Get("A").AsInt(),
                                                     t.Get("Result").AsInt());
                                  })
                   .ok());

  int injected = 0;
  for (const Tuple& t : stream) {
    if (split && injected == c.split_after) {
      BoxSplitter splitter(&system);
      SplitRequest req;
      req.box_name = "t";
      req.partition =
          c.predicate == PredicateKind::kContent
              ? Predicate::Compare("B", CompareOp::kLt, Value(50))
              : Predicate::HashPartition("B", 2, 0);
      req.dst_node = m2;
      req.wsort_timeout_us = 0;
      auto result = splitter.Split(&deployed, req);
      AURORA_CHECK(result.ok()) << result.status().ToString();
    }
    AURORA_CHECK(system.node(m1).Inject("in", t).ok());
    sim.RunFor(SimDuration::Millis(2));
    injected++;
  }
  sim.RunFor(SimDuration::Seconds(1));

  // Drain everything: leaves, then (when split) the merge chain.
  auto drain_box = [&](const std::string& name) {
    auto it = deployed.boxes.find(name);
    if (it == deployed.boxes.end()) return;
    AuroraEngine& engine = system.node(it->second.node).engine();
    AURORA_CHECK(engine.DrainBoxState(it->second.box, sim.Now()).ok());
    AURORA_CHECK(engine.RunUntilQuiescent(sim.Now()).ok());
    system.node(it->second.node).Flush();
    sim.RunFor(SimDuration::Millis(500));
  };
  drain_box("t");
  drain_box("t/copy");
  drain_box("t/wsort");
  drain_box("t/merge");
  sim.RunFor(SimDuration::Seconds(1));

  std::sort(out.begin(), out.end());
  return out;
}

TEST_P(SplitTransparencyTest, SplitEqualsUnsplit) {
  const SplitCase& c = GetParam();
  // Build a deterministic random *group-clustered* stream: each groupby
  // value appears in exactly one contiguous run of random length. This is
  // the regime the paper's merge network is designed for (its Figure 2
  // sample stream has this shape): with WSort in "large enough timeout"
  // mode, distinct temporal runs of the same group would be merged — see
  // RecurringGroupsMergeAcrossRuns below.
  Rng rng(c.seed);
  // Zipf-skewed run lengths: heavy skew = a few dominant groups, the
  // condition that misbalances content-based split predicates.
  ZipfGenerator zipf(10, c.zipf_skew);
  SchemaPtr schema = SchemaAB();
  std::vector<Tuple> stream;
  int64_t group = 0;
  while (static_cast<int>(stream.size()) < c.tuples) {
    int run = 1 + static_cast<int>(zipf.Sample(&rng));
    for (int j = 0; j < run && static_cast<int>(stream.size()) < c.tuples;
         ++j) {
      Tuple t =
          MakeTuple(schema, {Value(group), Value(rng.UniformInt(0, 99))});
      t.set_timestamp(SimTime::Millis(static_cast<int64_t>(stream.size())));
      stream.push_back(std::move(t));
    }
    ++group;
  }

  auto reference = RunQuery(stream, c, /*split=*/false);
  auto split = RunQuery(stream, c, /*split=*/true);
  EXPECT_EQ(split, reference);
}

TEST(SplitSemanticsTest, RecurringGroupsMergeAcrossRuns) {
  // Documented limitation, inherent to the paper's Fig. 6 merge network in
  // drain mode: when the same groupby value recurs in separate runs, the
  // merge WSort orders everything by the groupby attribute, so the
  // combining Tumble coalesces the runs. (A finite WSort timeout bounds
  // how far apart runs can be and still merge.) An unsplit box would have
  // emitted one result per run.
  SplitCase c{"cnt", PredicateKind::kHash, 0.0, 0, 0, 0};
  SchemaPtr schema = SchemaAB();
  std::vector<Tuple> stream;
  // Runs: A=1 (2 tuples), A=2 (1), A=1 again (3).
  for (int64_t a : {1, 1, 2, 1, 1, 1}) {
    Tuple t = MakeTuple(schema, {Value(a), Value(static_cast<int64_t>(
                                               stream.size()))});
    t.set_timestamp(SimTime::Millis(static_cast<int64_t>(stream.size())));
    stream.push_back(std::move(t));
  }
  c.tuples = static_cast<int>(stream.size());
  auto reference = RunQuery(stream, c, /*split=*/false);
  auto split = RunQuery(stream, c, /*split=*/true);
  // Unsplit: three results (1,2), (2,1), (1,3). Split+drain: the two A=1
  // runs merge into (1,5).
  EXPECT_EQ(reference.size(), 3u);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0], (std::pair<int64_t, int64_t>{1, 5}));
  EXPECT_EQ(split[1], (std::pair<int64_t, int64_t>{2, 1}));
}

std::vector<SplitCase> MakeSplitCases() {
  std::vector<SplitCase> cases;
  uint64_t seed = 100;
  for (const char* agg : {"cnt", "sum", "min", "max"}) {
    for (PredicateKind pred : {PredicateKind::kContent, PredicateKind::kHash}) {
      for (double skew : {0.0, 1.1}) {
        cases.push_back(SplitCase{agg, pred, skew, 60, 20, seed++});
      }
    }
  }
  // Edge positions: split before any tuple, and near the end.
  cases.push_back(SplitCase{"cnt", PredicateKind::kHash, 0.5, 40, 0, seed++});
  cases.push_back(SplitCase{"sum", PredicateKind::kContent, 0.5, 40, 39, seed++});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplitTransparencyTest,
                         ::testing::ValuesIn(MakeSplitCases()), CaseName);

}  // namespace
}  // namespace aurora
