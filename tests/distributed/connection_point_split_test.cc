// §5.2 "Handling Connection Points": splitting around a connection point
// preserves its history at the source, optionally replicates it (history
// and all) to the destination machine, and ad hoc queries keep working on
// both sides.
#include <gtest/gtest.h>

#include "distributed/box_splitter.h"
#include "distributed/catalog_binding.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::SchemaAB;

class CpSplitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    system_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(),
                                                 StarOptions{});
    ASSERT_OK_AND_ASSIGN(m1_, system_->AddNode(NodeOptions{"m1", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(m2_, system_->AddNode(NodeOptions{"m2", 1.0, {}}));
    net_->FullMesh(LinkOptions{});
    GlobalQuery q;
    ASSERT_OK(q.AddInput("in", SchemaAB()));
    ASSERT_OK(q.AddBox("f", FilterSpec(Predicate::True())));
    ASSERT_OK(q.AddOutput("out"));
    ASSERT_OK(q.ConnectInputToBox("in", "f"));
    ASSERT_OK(q.ConnectBoxToOutput("f", 0, "out"));
    ASSERT_OK_AND_ASSIGN(deployed_,
                         DeployQuery(system_.get(), q, {{"f", m1_}}));
    // Connection point on the filter's input arc.
    AuroraEngine& e1 = system_->node(m1_).engine();
    ASSERT_OK_AND_ASSIGN(ArcId arc,
                         e1.FindArcInto(deployed_.boxes.at("f").box, 0));
    RetentionPolicy policy;
    policy.max_tuples = 500;
    ASSERT_OK(e1.MakeConnectionPoint(arc, "cp", policy));
  }

  void Inject(int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      ASSERT_OK(system_->node(m1_).Inject(
          "in", MakeTuple(SchemaAB(), {Value(i), Value(i % 10)})));
      sim_.RunFor(SimDuration::Millis(1));
    }
  }

  SplitResult Split(bool replicate) {
    BoxSplitter splitter(system_.get());
    SplitRequest req;
    req.box_name = "f";
    req.partition = Predicate::HashPartition("A", 2, 0);
    req.dst_node = m2_;
    req.replicate_connection_point = replicate;
    auto result = splitter.Split(&deployed_, req);
    AURORA_CHECK(result.ok()) << result.status().ToString();
    return *result;
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> system_;
  DeployedQuery deployed_;
  NodeId m1_ = -1, m2_ = -1;
};

TEST_F(CpSplitTest, HistorySurvivesSplitAtTheSource) {
  Inject(0, 40);
  Split(/*replicate=*/false);
  AuroraEngine& e1 = system_->node(m1_).engine();
  ASSERT_OK_AND_ASSIGN(ConnectionPoint * cp, e1.GetConnectionPoint("cp"));
  EXPECT_EQ(cp->history_size(), 40u);
  // The point keeps recording post-split traffic (now at the router).
  Inject(40, 60);
  EXPECT_EQ(cp->history_size(), 60u);
}

TEST_F(CpSplitTest, ReplicaCarriesHistoryAndCostsBandwidth) {
  Inject(0, 40);
  uint64_t bytes_before = net_->LinkBytesSent(m1_, m2_);
  Split(/*replicate=*/true);
  AuroraEngine& e2 = system_->node(m2_).engine();
  ASSERT_OK_AND_ASSIGN(ConnectionPoint * replica,
                       e2.GetConnectionPoint("cp/replica"));
  EXPECT_EQ(replica->history_size(), 40u);
  sim_.RunFor(SimDuration::Millis(100));
  // The copied history was charged to the link.
  EXPECT_GT(net_->LinkBytesSent(m1_, m2_), bytes_before + 40 * 20);
  // Post-split, the replica records only its machine's partition.
  Inject(40, 80);
  sim_.RunFor(SimDuration::Seconds(1));
  EXPECT_GT(replica->history_size(), 40u);
  EXPECT_LT(replica->history_size(), 80u);
}

TEST_F(CpSplitTest, AdHocQueriesWorkOnBothSides) {
  Inject(0, 30);
  Split(/*replicate=*/true);
  sim_.RunFor(SimDuration::Millis(100));
  int source_matches = 0, replica_matches = 0;
  AuroraEngine& e1 = system_->node(m1_).engine();
  AuroraEngine& e2 = system_->node(m2_).engine();
  ASSERT_OK(e1.AttachAdHocQuery(
                  "cp", Predicate::Compare("B", CompareOp::kEq, Value(5)),
                  [&](const Tuple&, SimTime) { ++source_matches; })
                .status());
  ASSERT_OK(e2.AttachAdHocQuery(
                  "cp/replica",
                  Predicate::Compare("B", CompareOp::kEq, Value(5)),
                  [&](const Tuple&, SimTime) { ++replica_matches; })
                .status());
  // History replay: B==5 ⇔ A in {5, 15, 25}: 3 matches on each side.
  EXPECT_EQ(source_matches, 3);
  EXPECT_EQ(replica_matches, 3);
  // Live continuation on the source side sees all new matches.
  Inject(30, 60);
  sim_.RunFor(SimDuration::Seconds(1));
  EXPECT_EQ(source_matches, 6);
  // The replica sees only its machine's share of new matches.
  EXPECT_GE(replica_matches, 3);
  EXPECT_LE(replica_matches, 6);
}

TEST_F(CpSplitTest, PartitionedStreamRouting) {
  // §4.2: the catalog may record several locations for a stream; sources
  // push anywhere and tuples hash-partition across the locations.
  DhtCatalog catalog;
  ASSERT_OK(catalog.AddNode(m1_, "m1"));
  ASSERT_OK(catalog.AddNode(m2_, "m2"));
  CatalogBinding binding(system_.get(), &catalog, "acme");
  // Both nodes expose an input named "part"; feed each into a local sink.
  int at_m1 = 0, at_m2 = 0;
  for (auto [node, counter] : {std::pair{m1_, &at_m1}, {m2_, &at_m2}}) {
    AuroraEngine& engine = system_->node(node).engine();
    PortId in = *engine.AddInput("part", SchemaAB());
    PortId out = *engine.AddOutput("part_out");
    ASSERT_OK(engine.Connect(Endpoint::InputPort(in),
                             Endpoint::OutputPort(out)).status());
    engine.SetOutputCallback(out, [counter](const Tuple&, SimTime) {
      ++*counter;
    });
  }
  Encoder enc;
  enc.PutString("part");
  enc.PutSchema(*SchemaAB());
  DhtEntry entry;
  entry.kind = "stream";
  entry.payload = enc.TakeBuffer();
  entry.locations = {m1_, m2_};
  ASSERT_OK(catalog.Put(QualifiedName{"acme", "stream/partitioned"}, entry));

  for (int i = 0; i < 100; ++i) {
    Tuple t = MakeTuple(SchemaAB(), {Value(i), Value(0)});
    ASSERT_OK(binding.RouteSourceTuple(m1_, "partitioned", t));
  }
  sim_.RunFor(SimDuration::Seconds(1));
  EXPECT_EQ(at_m1 + at_m2, 100);
  EXPECT_GT(at_m1, 20);  // both partitions carry a real share
  EXPECT_GT(at_m2, 20);
}

}  // namespace
}  // namespace aurora
