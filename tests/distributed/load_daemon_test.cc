// The decentralized load-share daemon (§5): overload detection, pair-wise
// offloading, capability and cooldown constraints.
#include <gtest/gtest.h>

#include "distributed/load_daemon.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

class LoadDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    system_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(),
                                                 StarOptions{});
    ASSERT_OK_AND_ASSIGN(n0_, system_->AddNode(NodeOptions{"n0", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(n1_, system_->AddNode(NodeOptions{"n1", 1.0, {}}));
    net_->FullMesh(LinkOptions{});
  }

  // Several expensive filter chains, all initially on n0.
  DeployedQuery DeployHeavyQuery(int chains) {
    for (int c = 0; c < chains; ++c) {
      std::string idx = std::to_string(c);
      EXPECT_OK(query_.AddInput("in" + idx, SchemaAB()));
      OperatorSpec heavy = FilterSpec(Predicate::True());
      heavy.SetParam("cost_us", Value(500.0));  // deliberately expensive
      EXPECT_OK(query_.AddBox("f" + idx, heavy));
      EXPECT_OK(query_.AddOutput("out" + idx));
      EXPECT_OK(query_.ConnectInputToBox("in" + idx, "f" + idx));
      EXPECT_OK(query_.ConnectBoxToOutput("f" + idx, 0, "out" + idx));
      placement_["f" + idx] = n0_;
    }
    auto deployed = DeployQuery(system_.get(), query_, placement_);
    EXPECT_TRUE(deployed.ok()) << deployed.status().ToString();
    return *std::move(deployed);
  }

  void DriveTraffic(int chains, int per_ms, int duration_ms) {
    for (int t = 0; t < duration_ms; ++t) {
      sim_.ScheduleAt(SimTime::Millis(t), [this, chains, per_ms]() {
        for (int c = 0; c < chains; ++c) {
          for (int k = 0; k < per_ms; ++k) {
            (void)system_->node(n0_).Inject(
                "in" + std::to_string(c),
                MakeTuple(SchemaAB(), {Value(k), Value(k)}));
          }
        }
      });
    }
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> system_;
  GlobalQuery query_;
  std::map<std::string, NodeId> placement_;
  NodeId n0_ = -1, n1_ = -1;
};

TEST_F(LoadDaemonTest, OffloadsWhenOverloaded) {
  DeployedQuery deployed = DeployHeavyQuery(4);
  LoadDaemonOptions opts;
  opts.action = RepartitionAction::kSlideOnly;
  LoadShareDaemon daemon(system_.get(), &deployed, opts);
  daemon.Start();
  // 4 chains * 3/ms * 500us = 6x overload on n0.
  DriveTraffic(4, 3, 1000);
  sim_.RunUntil(SimTime::Seconds(2));

  EXPECT_GT(daemon.slides(), 0u);
  // At least one box now runs on the idle node.
  int on_n1 = 0;
  for (int c = 0; c < 4; ++c) {
    if (deployed.boxes.at("f" + std::to_string(c)).node == n1_) ++on_n1;
  }
  EXPECT_GT(on_n1, 0);
}

TEST_F(LoadDaemonTest, NoActionUnderLightLoad) {
  DeployedQuery deployed = DeployHeavyQuery(2);
  LoadShareDaemon daemon(system_.get(), &deployed, LoadDaemonOptions{});
  daemon.Start();
  DriveTraffic(2, 1, 50);  // short and light
  sim_.RunUntil(SimTime::Seconds(1));
  EXPECT_EQ(daemon.slides(), 0u);
  EXPECT_EQ(daemon.splits(), 0u);
}

TEST_F(LoadDaemonTest, CooldownLimitsThrash) {
  DeployedQuery deployed = DeployHeavyQuery(1);
  LoadDaemonOptions opts;
  opts.action = RepartitionAction::kSlideOnly;
  opts.cooldown = SimDuration::Seconds(100);  // effectively one move
  opts.interval = SimDuration::Millis(50);
  LoadShareDaemon daemon(system_.get(), &deployed, opts);
  daemon.Start();
  DriveTraffic(1, 10, 2000);
  sim_.RunUntil(SimTime::Seconds(3));
  // The single hot box can move at most once under the long cooldown, even
  // though the daemon ran dozens of rounds.
  EXPECT_LE(daemon.slides(), 1u);
  EXPECT_GT(daemon.rounds(), 20u);
}

TEST_F(LoadDaemonTest, RespectsCapabilityOfTarget) {
  // Replace n1 with a filter-only weak node and use a tumble-heavy query.
  Simulation sim;
  OverlayNetwork net(&sim);
  AuroraStarSystem sys(&sim, &net, StarOptions{});
  ASSERT_OK_AND_ASSIGN(NodeId big, sys.AddNode(NodeOptions{"big", 1.0, {}}));
  ASSERT_OK_AND_ASSIGN(NodeId weak,
                       sys.AddNode(NodeOptions{"weak", 1.0, {"filter"}}));
  net.FullMesh(LinkOptions{});
  GlobalQuery q;
  ASSERT_OK(q.AddInput("in", SchemaAB()));
  OperatorSpec heavy = TumbleSpec("cnt", "B", {"A"});
  heavy.SetParam("cost_us", Value(800.0));
  ASSERT_OK(q.AddBox("t", heavy));
  ASSERT_OK(q.AddOutput("out"));
  ASSERT_OK(q.ConnectInputToBox("in", "t"));
  ASSERT_OK(q.ConnectBoxToOutput("t", 0, "out"));
  ASSERT_OK_AND_ASSIGN(DeployedQuery deployed,
                       DeployQuery(&sys, q, {{"t", big}}));
  LoadDaemonOptions opts;
  opts.action = RepartitionAction::kSlideOnly;
  LoadShareDaemon daemon(&sys, &deployed, opts);
  daemon.Start();
  for (int t = 0; t < 1000; ++t) {
    sim.ScheduleAt(SimTime::Millis(t), [&sys, big]() {
      for (int k = 0; k < 5; ++k) {
        (void)sys.node(big).Inject(
            "in", MakeTuple(testing_util::SchemaAB(), {Value(k), Value(k)}));
      }
    });
  }
  sim.RunUntil(SimTime::Seconds(2));
  // The only peer cannot run Tumble: the box must stay put.
  EXPECT_EQ(daemon.slides(), 0u);
  EXPECT_EQ(deployed.boxes.at("t").node, big);
}

}  // namespace
}  // namespace aurora
