// Full-stack integration: one Aurora* system running with the load-share
// daemon, upstream-backup HA, and the DHT catalog simultaneously — the
// paper's complete §3 picture. A node crash during active load balancing
// must not lose data, and the survivors keep balancing afterwards.
#include <gtest/gtest.h>

#include <set>

#include "distributed/catalog_binding.h"
#include "distributed/load_daemon.h"
#include "ha/upstream_backup.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::SchemaAB;

TEST(FullStackTest, CrashDuringLoadBalancingLosesNothing) {
  Simulation sim;
  OverlayNetwork net(&sim);
  AuroraStarSystem system(&sim, &net, StarOptions{});
  DhtCatalog catalog;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 4; ++i) {
    NodeId id = *system.AddNode(NodeOptions{"n" + std::to_string(i), 1.0, {}});
    ASSERT_OK(catalog.AddNode(id, "n" + std::to_string(i)));
    nodes.push_back(id);
  }
  net.FullMesh(LinkOptions{});

  // Chain: src (cheap, n0) -> work (expensive, n1) -> tally (n2) -> out.
  GlobalQuery q;
  ASSERT_OK(q.AddInput("in", SchemaAB()));
  ASSERT_OK(q.AddBox("src", FilterSpec(Predicate::True())));
  OperatorSpec heavy = FilterSpec(Predicate::True());
  heavy.SetParam("cost_us", Value(350.0));
  ASSERT_OK(q.AddBox("work", heavy));
  ASSERT_OK(q.AddBox("tally", TumbleSpec("cnt", "B", {"A"})));
  ASSERT_OK(q.AddOutput("out"));
  ASSERT_OK(q.ConnectInputToBox("in", "src"));
  ASSERT_OK(q.ConnectBoxes("src", 0, "work", 0));
  ASSERT_OK(q.ConnectBoxes("work", 0, "tally", 0));
  ASSERT_OK(q.ConnectBoxToOutput("tally", 0, "out"));
  ASSERT_OK_AND_ASSIGN(
      DeployedQuery deployed,
      DeployQuery(&system, q,
                  {{"src", nodes[0]}, {"work", nodes[1]}, {"tally", nodes[2]}}));
  CatalogBinding binding(&system, &catalog, "acme");
  ASSERT_OK(binding.RegisterDeployment("pipeline", q, deployed));

  std::set<int64_t> groups;
  for (NodeId nd : nodes) {
    (void)system.CollectOutput(nd, "out", [&](const Tuple& t, SimTime) {
      groups.insert(GetInt(t, "A"));
    });
  }

  HaManager ha(&system, HaOptions{});
  ASSERT_OK(ha.Protect(&deployed, &q));
  LoadDaemonOptions daemon_opts;
  daemon_opts.action = RepartitionAction::kSlideOnly;
  LoadShareDaemon daemon(&system, &deployed, daemon_opts);
  daemon.Start();

  // 3000 groups at ~1.4x of one node's capacity for the heavy box.
  const int kGroups = 3000;
  SchemaPtr schema = SchemaAB();
  for (int i = 0; i < kGroups; ++i) {
    sim.ScheduleAt(SimTime::Micros(i * 250), [&system, &nodes, schema, i]() {
      (void)system.node(nodes[0]).Inject(
          "in", MakeTuple(schema, {Value(i), Value(i % 10)}));
    });
  }
  // Crash the tally node mid-run, while the daemon may be mid-migration.
  sim.ScheduleAt(SimTime::Millis(300), [&]() { ha.CrashNode(nodes[2]); });
  sim.RunUntil(SimTime::Seconds(6));

  EXPECT_GE(ha.recoveries(), 1);
  // HA recovered the tally onto a live node.
  EXPECT_NE(deployed.boxes.at("tally").node, nodes[2]);
  // No closed group lost despite crash + concurrent slides (the last group
  // stays open).
  int lost = 0;
  for (int i = 0; i < kGroups - 1; ++i) {
    if (!groups.count(i)) ++lost;
  }
  EXPECT_EQ(lost, 0);
  // The catalog can be told about the final locations.
  ASSERT_OK(binding.UpdateBoxLocation("pipeline", "tally",
                                      deployed.boxes.at("tally").node));
  ASSERT_OK_AND_ASSIGN(std::vector<NodeId> where,
                       binding.LookupBox("pipeline", "tally", nodes[0]));
  EXPECT_EQ(where.front(), deployed.boxes.at("tally").node);
}

TEST(FullStackTest, DaemonNeverSlidesOntoDeadNode) {
  Simulation sim;
  OverlayNetwork net(&sim);
  AuroraStarSystem system(&sim, &net, StarOptions{});
  NodeId busy = *system.AddNode(NodeOptions{"busy", 1.0, {}});
  NodeId dead = *system.AddNode(NodeOptions{"dead", 1.0, {}});
  NodeId alive = *system.AddNode(NodeOptions{"alive", 1.0, {}});
  net.FullMesh(LinkOptions{});
  GlobalQuery q;
  ASSERT_OK(q.AddInput("in", SchemaAB()));
  OperatorSpec heavy = FilterSpec(Predicate::True());
  heavy.SetParam("cost_us", Value(600.0));
  ASSERT_OK(q.AddBox("work", heavy));
  ASSERT_OK(q.AddOutput("out"));
  ASSERT_OK(q.ConnectInputToBox("in", "work"));
  ASSERT_OK(q.ConnectBoxToOutput("work", 0, "out"));
  ASSERT_OK_AND_ASSIGN(DeployedQuery deployed,
                       DeployQuery(&system, q, {{"work", busy}}));
  system.node(dead).SetUp(false);
  LoadDaemonOptions opts;
  opts.action = RepartitionAction::kSlideOnly;
  LoadShareDaemon daemon(&system, &deployed, opts);
  daemon.Start();
  SchemaPtr schema = SchemaAB();
  for (int i = 0; i < 4000; ++i) {
    sim.ScheduleAt(SimTime::Micros(i * 300), [&system, busy, schema, i]() {
      (void)system.node(busy).Inject(
          "in", MakeTuple(schema, {Value(i), Value(0)}));
    });
  }
  sim.RunUntil(SimTime::Seconds(3));
  EXPECT_GT(daemon.slides(), 0u);
  EXPECT_EQ(deployed.boxes.at("work").node, alive);
}

}  // namespace
}  // namespace aurora
