// StreamNode mechanics: sequence numbering, batching, utilization
// accounting, and failure behaviour.
#include <gtest/gtest.h>

#include "distributed/aurora_star.h"
#include "tests/test_util.h"
#include "tuple/serde.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::SchemaAB;

class StreamNodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    system_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(),
                                                 StarOptions{});
    ASSERT_OK_AND_ASSIGN(a_, system_->AddNode(NodeOptions{"a", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(b_, system_->AddNode(NodeOptions{"b", 1.0, {}}));
    net_->FullMesh(LinkOptions{});
    // a: input -> filter -> remote output;  b: input -> output (collector).
    AuroraEngine& ae = system_->node(a_).engine();
    PortId in = *ae.AddInput("in", SchemaAB());
    PortId out = *ae.AddOutput("xout");
    BoxId f = *ae.AddBox(FilterSpec(Predicate::True()));
    ASSERT_OK(ae.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(f, 0)).status());
    ASSERT_OK(ae.Connect(Endpoint::BoxPort(f, 0), Endpoint::OutputPort(out)).status());
    ASSERT_OK(ae.InitializeBoxes());
    AuroraEngine& be = system_->node(b_).engine();
    PortId bin = *be.AddInput("xin", SchemaAB());
    PortId bout = *be.AddOutput("final");
    ASSERT_OK(be.Connect(Endpoint::InputPort(bin), Endpoint::OutputPort(bout)).status());
    be.SetOutputCallback(bout, [this](const Tuple& t, SimTime) {
      received_.push_back(t);
    });
    ASSERT_OK_AND_ASSIGN(stream_,
                         system_->ConnectRemote(a_, "xout", b_, "xin"));
  }

  void Inject(int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_OK(system_->node(a_).Inject(
          "in", MakeTuple(SchemaAB(), {Value(i), Value(0)})));
      sim_.RunFor(SimDuration::Millis(1));
    }
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> system_;
  std::vector<Tuple> received_;
  std::string stream_;
  NodeId a_ = -1, b_ = -1;
};

TEST_F(StreamNodeTest, SequenceNumbersAreMonotonePerStream) {
  Inject(20);
  sim_.RunFor(SimDuration::Seconds(1));
  ASSERT_EQ(received_.size(), 20u);
  for (size_t i = 0; i < received_.size(); ++i) {
    EXPECT_EQ(received_[i].seq(), i + 1);  // §6.2: monotonically increasing
    EXPECT_EQ(GetInt(received_[i], "A"), static_cast<int64_t>(i));
  }
  EXPECT_EQ(system_->node(b_).LastReceivedSeq("xin"), 20u);
}

TEST_F(StreamNodeTest, BindingStatsTrackTraffic) {
  Inject(15);
  sim_.RunFor(SimDuration::Seconds(1));
  const auto& binding = system_->node(a_).bindings().begin()->second;
  EXPECT_EQ(binding.tuples_sent, 15u);
  EXPECT_GT(binding.messages_sent, 0u);
  EXPECT_LE(binding.messages_sent, 15u);  // batching never inflates
  EXPECT_EQ(binding.stream, stream_);
}

TEST_F(StreamNodeTest, DownNodeRefusesInjection) {
  system_->node(a_).SetUp(false);
  Status st = system_->node(a_).Inject(
      "in", MakeTuple(SchemaAB(), {Value(1), Value(0)}));
  EXPECT_TRUE(st.IsUnavailable());
  // Back up: traffic flows again.
  system_->node(a_).SetUp(true);
  Inject(3);
  sim_.RunFor(SimDuration::Seconds(1));
  EXPECT_EQ(received_.size(), 3u);
}

TEST_F(StreamNodeTest, UnknownStreamIsDroppedNotFatal) {
  system_->node(b_).OnRemoteStream("ghost-stream", {});
  Inject(2);
  sim_.RunFor(SimDuration::Seconds(1));
  EXPECT_EQ(received_.size(), 2u);
}

TEST_F(StreamNodeTest, UtilizationRisesUnderLoad) {
  // Make the filter expensive and hammer it.
  AuroraEngine& ae = system_->node(a_).engine();
  for (BoxId id : ae.BoxIds()) {
    (void)(*ae.BoxOp(id))->cost_micros_per_tuple();
    (*ae.BoxOp(id))->set_cost_micros_per_tuple(800.0);
  }
  SchemaPtr schema = SchemaAB();
  for (int i = 0; i < 3000; ++i) {
    sim_.ScheduleAt(SimTime::Micros(i * 400), [this, schema, i]() {
      (void)system_->node(a_).Inject(
          "in", MakeTuple(schema, {Value(i), Value(0)}));
    });
  }
  sim_.RunUntil(SimTime::Seconds(1));
  EXPECT_GT(system_->node(a_).utilization(), 0.8);
  EXPECT_LT(system_->node(b_).utilization(), 0.3);
}

TEST_F(StreamNodeTest, DuplicateBindingRejected) {
  StreamNode& a = system_->node(a_);
  Status st = a.BindRemoteOutput("xout", &system_->node(b_), "xin", "s2");
  EXPECT_TRUE(st.IsAlreadyExists());
}

TEST_F(StreamNodeTest, BindingToMissingRemoteInputRejected) {
  AuroraEngine& ae = system_->node(a_).engine();
  PortId extra = *ae.AddOutput("extra");
  (void)extra;
  Status st = system_->node(a_).BindRemoteOutput(
      "extra", &system_->node(b_), "no-such-input", "s3");
  EXPECT_TRUE(st.IsNotFound());
}

}  // namespace
}  // namespace aurora
