// Bit-exact reproduction of the paper's box-splitting worked examples:
//  - Fig. 5: splitting a Filter requires only a Union to merge.
//  - Fig. 6 + §5.1 text: splitting Tumble(cnt, groupby A) after tuple #3
//    with routing predicate B < 3. Machine 1 then sees tuples 1,2,3,4,7 and
//    emits (A=1,2) and (A=2,2); machine 2 sees tuples 5,6 and emits
//    (A=2,1); the Union+WSort+Tumble(sum) merge yields (A=1,2), (A=2,3) —
//    identical to the unsplit box.
#include <gtest/gtest.h>

#include "distributed/box_splitter.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::PaperFigure2Stream;
using testing_util::SchemaAB;

class SplitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    system_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(),
                                                 StarOptions{});
    ASSERT_OK_AND_ASSIGN(m1_, system_->AddNode(NodeOptions{"machine1", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(m2_, system_->AddNode(NodeOptions{"machine2", 1.0, {}}));
    net_->FullMesh(LinkOptions{});
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> system_;
  NodeId m1_ = -1, m2_ = -1;
};

TEST_F(SplitTest, PaperFigure6TumbleSplit) {
  GlobalQuery q;
  ASSERT_OK(q.AddInput("in", SchemaAB()));
  ASSERT_OK(q.AddBox("t", TumbleSpec("cnt", "B", {"A"})));
  ASSERT_OK(q.AddOutput("out"));
  ASSERT_OK(q.ConnectInputToBox("in", "t"));
  ASSERT_OK(q.ConnectBoxToOutput("t", 0, "out"));
  ASSERT_OK_AND_ASSIGN(DeployedQuery deployed,
                       DeployQuery(system_.get(), q, {{"t", m1_}}));
  std::vector<Tuple> out;
  ASSERT_OK(system_->CollectOutput(
      m1_, "out", [&](const Tuple& t, SimTime) { out.push_back(t); }));

  std::vector<Tuple> stream = PaperFigure2Stream();
  // Tuples #1..#3 arrive before the split. Tuple #3 closes the A=1 window,
  // so (A=1, result=2) is emitted by the (still unsplit) box right away.
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(system_->node(m1_).Inject("in", stream[i]));
  }
  sim_.RunFor(SimDuration::Millis(50));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(GetInt(out[0], "A"), 1);
  EXPECT_EQ(GetInt(out[0], "Result"), 2);

  // "Suppose that a split of the Tumble box takes place after tuple #3
  //  arrives, and that the Filter box used for routing uses B < 3."
  BoxSplitter splitter(system_.get());
  SplitRequest req;
  req.box_name = "t";
  req.partition =
      Predicate::Compare("B", CompareOp::kLt, Value(static_cast<int64_t>(3)));
  req.dst_node = m2_;
  req.wsort_timeout_us = 0;  // the paper's "large enough timeout"
  ASSERT_OK_AND_ASSIGN(SplitResult split, splitter.Split(&deployed, req));

  // Tuples #4..#7 arrive after the split.
  for (int i = 3; i < 7; ++i) {
    ASSERT_OK(system_->node(m1_).Inject("in", stream[i]));
  }
  sim_.RunFor(SimDuration::Seconds(2));

  // Post-split leaf emissions per the paper: machine 1 (tuples 4, 7)
  // emitted (A=2,result=2); machine 2 (tuples 5, 6) emitted (A=2,result=1).
  // Both are buffered in the merge WSort; nothing new reached the output
  // (the A=4 windows never closed).
  EXPECT_EQ(out.size(), 1u);

  // Verify machine 2's Tumble saw exactly tuples #5 and #6.
  AuroraEngine& e2 = system_->node(m2_).engine();
  ASSERT_OK_AND_ASSIGN(Operator * copy_op,
                       e2.BoxOp(deployed.boxes.at("t/copy").box));
  EXPECT_EQ(copy_op->tuples_in(), 2u);
  EXPECT_EQ(copy_op->tuples_out(), 1u);  // emitted (A=2, result=1)

  // Drain the merge: WSort (large timeout) then the combining Tumble.
  AuroraEngine& e1 = system_->node(m1_).engine();
  ASSERT_OK(e1.DrainBoxState(deployed.boxes.at("t/wsort").box, sim_.Now()));
  ASSERT_OK(e1.RunUntilQuiescent(sim_.Now()));
  ASSERT_OK(e1.DrainBoxState(deployed.boxes.at("t/merge").box, sim_.Now()));
  ASSERT_OK(e1.RunUntilQuiescent(sim_.Now()));
  sim_.RunFor(SimDuration::Millis(100));

  // "(A = 1, result = 2) (A = 2, result = 3) ... identical to that of the
  //  unsplit Tumble box." The merge summed 2 + 1 for the A=2 run.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(GetInt(out[0], "A"), 1);
  EXPECT_EQ(GetInt(out[0], "Result"), 2);
  EXPECT_EQ(GetInt(out[1], "A"), 2);
  EXPECT_EQ(GetInt(out[1], "Result"), 3);
}

TEST_F(SplitTest, PaperFigure5FilterSplitTransparency) {
  // Reference run: unsplit Filter(B >= 5) over a deterministic stream.
  auto build = [&](AuroraStarSystem* system, NodeId node) {
    GlobalQuery q;
    EXPECT_OK(q.AddInput("in", SchemaAB()));
    EXPECT_OK(q.AddBox(
        "f", FilterSpec(Predicate::Compare("B", CompareOp::kGe,
                                           Value(static_cast<int64_t>(5))))));
    EXPECT_OK(q.AddOutput("out"));
    EXPECT_OK(q.ConnectInputToBox("in", "f"));
    EXPECT_OK(q.ConnectBoxToOutput("f", 0, "out"));
    auto d = DeployQuery(system, q, {{"f", node}});
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return *std::move(d);
  };

  DeployedQuery deployed = build(system_.get(), m1_);
  std::vector<Tuple> out;
  ASSERT_OK(system_->CollectOutput(
      m1_, "out", [&](const Tuple& t, SimTime) { out.push_back(t); }));

  auto inject = [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      ASSERT_OK(system_->node(m1_).Inject(
          "in", MakeTuple(SchemaAB(), {Value(i), Value(i % 13)})));
    }
  };
  inject(0, 100);
  sim_.RunFor(SimDuration::Millis(100));

  BoxSplitter splitter(system_.get());
  SplitRequest req;
  req.box_name = "f";
  req.partition = Predicate::HashPartition("A", 2, 0);  // "half the streams"
  req.dst_node = m2_;
  ASSERT_OK_AND_ASSIGN(SplitResult split, splitter.Split(&deployed, req));
  (void)split;
  inject(100, 200);
  sim_.RunFor(SimDuration::Seconds(2));

  // Same multiset as an unsplit filter: every i in [0,200) with i%13 >= 5.
  std::vector<int64_t> got;
  for (const auto& t : out) got.push_back(GetInt(t, "A"));
  std::sort(got.begin(), got.end());
  std::vector<int64_t> want;
  for (int i = 0; i < 200; ++i) {
    if (i % 13 >= 5) want.push_back(i);
  }
  EXPECT_EQ(got, want);

  // Both machines processed part of the post-split load.
  AuroraEngine& e2 = system_->node(m2_).engine();
  ASSERT_OK_AND_ASSIGN(Operator * copy_op,
                       e2.BoxOp(deployed.boxes.at("f/copy").box));
  EXPECT_GT(copy_op->tuples_in(), 0u);
}

TEST_F(SplitTest, AvgTumbleCannotBeSplit) {
  GlobalQuery q;
  ASSERT_OK(q.AddInput("in", SchemaAB()));
  ASSERT_OK(q.AddBox("t", TumbleSpec("avg", "B", {"A"})));
  ASSERT_OK(q.AddOutput("out"));
  ASSERT_OK(q.ConnectInputToBox("in", "t"));
  ASSERT_OK(q.ConnectBoxToOutput("t", 0, "out"));
  ASSERT_OK_AND_ASSIGN(DeployedQuery deployed,
                       DeployQuery(system_.get(), q, {{"t", m1_}}));
  BoxSplitter splitter(system_.get());
  SplitRequest req;
  req.box_name = "t";
  req.partition = Predicate::HashPartition("A", 2, 0);
  req.dst_node = m2_;
  auto result = splitter.Split(&deployed, req);
  // avg has no combination function (§5.1's agg/combine requirement).
  EXPECT_TRUE(result.status().IsFailedPrecondition())
      << result.status().ToString();
}

TEST_F(SplitTest, MaxAggregateCombinesWithMax) {
  GlobalQuery q;
  ASSERT_OK(q.AddInput("in", SchemaAB()));
  ASSERT_OK(q.AddBox("t", TumbleSpec("max", "B", {"A"})));
  ASSERT_OK(q.AddOutput("out"));
  ASSERT_OK(q.ConnectInputToBox("in", "t"));
  ASSERT_OK(q.ConnectBoxToOutput("t", 0, "out"));
  ASSERT_OK_AND_ASSIGN(DeployedQuery deployed,
                       DeployQuery(system_.get(), q, {{"t", m1_}}));
  std::vector<Tuple> out;
  ASSERT_OK(system_->CollectOutput(
      m1_, "out", [&](const Tuple& t, SimTime) { out.push_back(t); }));

  BoxSplitter splitter(system_.get());
  SplitRequest req;
  req.box_name = "t";
  req.partition = Predicate::HashPartition("B", 2, 0);
  req.dst_node = m2_;
  ASSERT_OK(splitter.Split(&deployed, req).status());

  // One run of A=1 with B values 0..9 (hash-split across machines), then a
  // closing tuple with A=2.
  for (int b = 0; b < 10; ++b) {
    ASSERT_OK(system_->node(m1_).Inject(
        "in", MakeTuple(SchemaAB(), {Value(1), Value(b)})));
  }
  ASSERT_OK(system_->node(m1_).Inject(
      "in", MakeTuple(SchemaAB(), {Value(2), Value(0)})));
  sim_.RunFor(SimDuration::Seconds(2));

  // Each machine's open partial window only closes on a later tuple with a
  // different groupby value; flush the leaves explicitly instead.
  AuroraEngine& e1 = system_->node(m1_).engine();
  AuroraEngine& e2_drain = system_->node(m2_).engine();
  ASSERT_OK(e1.DrainBoxState(deployed.boxes.at("t").box, sim_.Now()));
  ASSERT_OK(e1.RunUntilQuiescent(sim_.Now()));
  ASSERT_OK(e2_drain.DrainBoxState(deployed.boxes.at("t/copy").box, sim_.Now()));
  ASSERT_OK(e2_drain.RunUntilQuiescent(sim_.Now()));
  system_->node(m2_).Flush();
  sim_.RunFor(SimDuration::Seconds(1));
  ASSERT_OK(e1.RunUntilQuiescent(sim_.Now()));
  ASSERT_OK(e1.DrainBoxState(deployed.boxes.at("t/wsort").box, sim_.Now()));
  ASSERT_OK(e1.RunUntilQuiescent(sim_.Now()));
  ASSERT_OK(e1.DrainBoxState(deployed.boxes.at("t/merge").box, sim_.Now()));
  ASSERT_OK(e1.RunUntilQuiescent(sim_.Now()));
  sim_.RunFor(SimDuration::Millis(100));

  // max over both partial windows must be 9.
  ASSERT_GE(out.size(), 1u);
  EXPECT_EQ(GetInt(out[0], "A"), 1);
  EXPECT_EQ(GetInt(out[0], "Result"), 9);
}

}  // namespace
}  // namespace aurora
