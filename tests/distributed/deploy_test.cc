// Multi-node deployment of a global query (paper §3.1): boxes partitioned
// across nodes, cross-node arcs realized as transport streams, results
// identical to single-node execution.
#include <gtest/gtest.h>

#include "distributed/deployment.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::PaperFigure2Stream;
using testing_util::SchemaAB;

class DeployTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    system_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(),
                                                 StarOptions{});
  }

  GlobalQuery MakeFilterTumbleQuery() {
    GlobalQuery q;
    EXPECT_TRUE(q.AddInput("in", SchemaAB()).ok());
    EXPECT_TRUE(
        q.AddBox("f", FilterSpec(Predicate::Compare(
                          "B", CompareOp::kGt, Value(static_cast<int64_t>(0)))))
            .ok());
    EXPECT_TRUE(q.AddBox("t", TumbleSpec("cnt", "B", {"A"})).ok());
    EXPECT_TRUE(q.AddOutput("out").ok());
    EXPECT_TRUE(q.ConnectInputToBox("in", "f").ok());
    EXPECT_TRUE(q.ConnectBoxes("f", 0, "t", 0).ok());
    EXPECT_TRUE(q.ConnectBoxToOutput("t", 0, "out").ok());
    return q;
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> system_;
};

TEST_F(DeployTest, SingleNodeDeployment) {
  ASSERT_OK_AND_ASSIGN(NodeId n0, system_->AddNode(NodeOptions{"n0", 1.0, {}}));
  GlobalQuery q = MakeFilterTumbleQuery();
  ASSERT_OK_AND_ASSIGN(DeployedQuery deployed,
                       DeployQuery(system_.get(), q, {{"f", n0}, {"t", n0}}));
  std::vector<Tuple> out;
  ASSERT_OK(system_->CollectOutput(
      n0, "out", [&](const Tuple& t, SimTime) { out.push_back(t); }));

  for (const Tuple& t : PaperFigure2Stream()) {
    ASSERT_OK(system_->node(n0).Inject("in", t));
  }
  sim_.RunFor(SimDuration::Seconds(1));

  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(GetInt(out[0], "A"), 1);
  EXPECT_EQ(GetInt(out[0], "Result"), 2);
  EXPECT_EQ(GetInt(out[1], "A"), 2);
  EXPECT_EQ(GetInt(out[1], "Result"), 3);
}

TEST_F(DeployTest, TwoNodeDeploymentMatchesSingleNode) {
  ASSERT_OK_AND_ASSIGN(NodeId n0, system_->AddNode(NodeOptions{"n0", 1.0, {}}));
  ASSERT_OK_AND_ASSIGN(NodeId n1, system_->AddNode(NodeOptions{"n1", 1.0, {}}));
  ASSERT_OK(net_->AddLink(n0, n1, LinkOptions{}));

  GlobalQuery q = MakeFilterTumbleQuery();
  ASSERT_OK_AND_ASSIGN(DeployedQuery deployed,
                       DeployQuery(system_.get(), q, {{"f", n0}, {"t", n1}}));
  EXPECT_EQ(deployed.boxes.at("f").node, n0);
  EXPECT_EQ(deployed.boxes.at("t").node, n1);
  EXPECT_EQ(deployed.remote_streams.size(), 1u);

  std::vector<Tuple> out;
  ASSERT_OK(system_->CollectOutput(
      n1, "out", [&](const Tuple& t, SimTime) { out.push_back(t); }));

  for (const Tuple& t : PaperFigure2Stream()) {
    ASSERT_OK(system_->node(n0).Inject("in", t));
  }
  sim_.RunFor(SimDuration::Seconds(2));

  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(GetInt(out[0], "A"), 1);
  EXPECT_EQ(GetInt(out[0], "Result"), 2);
  EXPECT_EQ(GetInt(out[1], "A"), 2);
  EXPECT_EQ(GetInt(out[1], "Result"), 3);
  // The cross-node arc actually moved bytes over the link.
  EXPECT_GT(net_->LinkBytesSent(n0, n1), 0u);
}

TEST_F(DeployTest, MissingPlacementFails) {
  ASSERT_OK_AND_ASSIGN(NodeId n0, system_->AddNode(NodeOptions{"n0", 1.0, {}}));
  GlobalQuery q = MakeFilterTumbleQuery();
  auto result = DeployQuery(system_.get(), q, {{"f", n0}});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(DeployTest, CapabilityCheckRejectsWeakNode) {
  // A sensor-proxy node that only supports filters cannot host a Tumble
  // (§5.1: "the sensor might not support a Tumble box").
  ASSERT_OK_AND_ASSIGN(NodeId n0, system_->AddNode(NodeOptions{"n0", 1.0, {}}));
  ASSERT_OK_AND_ASSIGN(
      NodeId sensor,
      system_->AddNode(NodeOptions{"sensor", 0.1, {"filter"}}));
  ASSERT_OK(net_->AddLink(n0, sensor, LinkOptions{}));
  GlobalQuery q = MakeFilterTumbleQuery();
  auto result = DeployQuery(system_.get(), q, {{"f", sensor}, {"t", sensor}});
  EXPECT_TRUE(result.status().IsFailedPrecondition()) << result.status().ToString();
}

TEST_F(DeployTest, LatencyReflectsLinkDelay) {
  ASSERT_OK_AND_ASSIGN(NodeId n0, system_->AddNode(NodeOptions{"n0", 1.0, {}}));
  ASSERT_OK_AND_ASSIGN(NodeId n1, system_->AddNode(NodeOptions{"n1", 1.0, {}}));
  LinkOptions slow;
  slow.latency = SimDuration::Millis(50);
  ASSERT_OK(net_->AddLink(n0, n1, slow));

  GlobalQuery q = MakeFilterTumbleQuery();
  ASSERT_OK_AND_ASSIGN(DeployedQuery deployed,
                       DeployQuery(system_.get(), q, {{"f", n0}, {"t", n1}}));
  std::vector<SimTime> arrivals;
  std::vector<Tuple> out;
  ASSERT_OK(system_->CollectOutput(n1, "out",
                                   [&](const Tuple& t, SimTime now) {
                                     out.push_back(t);
                                     arrivals.push_back(now);
                                   }));
  for (const Tuple& t : PaperFigure2Stream()) {
    Tuple fresh = t;
    fresh.set_timestamp(SimTime());  // stamp at injection
    ASSERT_OK(system_->node(n0).Inject("in", fresh));
  }
  sim_.RunFor(SimDuration::Seconds(2));
  ASSERT_EQ(out.size(), 2u);
  // Results crossed the 50 ms link at least once.
  EXPECT_GE(arrivals[0].millis(), 50.0);
}

}  // namespace
}  // namespace aurora
