// Box sliding (paper §5.1, Fig. 4) with the stabilization protocol:
// choke -> drain -> move -> rewire -> re-inject held tuples -> resume.
#include <gtest/gtest.h>

#include "distributed/box_slider.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::SchemaAB;

class SlideTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    system_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(),
                                                 StarOptions{});
    ASSERT_OK_AND_ASSIGN(n0_, system_->AddNode(NodeOptions{"n0", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(n1_, system_->AddNode(NodeOptions{"n1", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(
        sensor_, system_->AddNode(NodeOptions{"sensor", 0.2, {"filter"}}));
    net_->FullMesh(LinkOptions{});
  }

  // input -> Filter(B >= 3) -> output, with the filter on `filter_node`.
  // Sources inject at the input's home node (the filter's node).
  DeployedQuery DeployFilterQuery(NodeId filter_node) {
    GlobalQuery q;
    EXPECT_OK(q.AddInput("in", SchemaAB()));
    EXPECT_OK(q.AddBox(
        "f", FilterSpec(Predicate::Compare("B", CompareOp::kGe,
                                           Value(static_cast<int64_t>(3))))));
    EXPECT_OK(q.AddOutput("out"));
    EXPECT_OK(q.ConnectInputToBox("in", "f"));
    EXPECT_OK(q.ConnectBoxToOutput("f", 0, "out"));
    auto deployed = DeployQuery(system_.get(), q, {{"f", filter_node}});
    EXPECT_TRUE(deployed.ok()) << deployed.status().ToString();
    return *std::move(deployed);
  }

  Tuple ABTuple(int64_t a, int64_t b) {
    return MakeTuple(SchemaAB(), {Value(a), Value(b)});
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> system_;
  NodeId n0_ = -1, n1_ = -1, sensor_ = -1;
};

TEST_F(SlideTest, SlideFilterMidStreamLosesNothing) {
  DeployedQuery deployed = DeployFilterQuery(n1_);
  std::vector<Tuple> out;
  ASSERT_OK(system_->CollectOutput(
      n1_, "out", [&](const Tuple& t, SimTime) { out.push_back(t); }));

  // First half of the stream before the slide.
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(system_->node(n1_).Inject("in", ABTuple(i, i % 10)));
  }
  sim_.RunFor(SimDuration::Millis(100));

  BoxSlider slider(system_.get());
  ASSERT_OK_AND_ASSIGN(
      SlideResult result,
      slider.Slide(&deployed, "f", n0_, SlideMode::kRemoteDefinition));
  EXPECT_EQ(result.dst_node, n0_);
  EXPECT_EQ(deployed.boxes.at("f").node, n0_);

  // Second half after the slide; output is relayed back to n1.
  for (int i = 50; i < 100; ++i) {
    ASSERT_OK(system_->node(n1_).Inject("in", ABTuple(i, i % 10)));
  }
  sim_.RunFor(SimDuration::Seconds(2));

  // Reference: B % 10 >= 3 passes 7 of every 10.
  ASSERT_EQ(out.size(), 70u);
  for (size_t i = 0; i + 1 < out.size(); ++i) {
    // Order preserved across the move.
    EXPECT_LT(GetInt(out[i], "A"), GetInt(out[i + 1], "A"));
  }
  // Traffic flowed over the n1->n0 link after the slide.
  EXPECT_GT(net_->LinkBytesSent(n1_, n0_), 0u);
}

TEST_F(SlideTest, HeldTuplesAreReinjectedInOrder) {
  DeployedQuery deployed = DeployFilterQuery(n1_);
  std::vector<Tuple> out;
  ASSERT_OK(system_->CollectOutput(
      n1_, "out", [&](const Tuple& t, SimTime) { out.push_back(t); }));

  // Manually choke the filter's input arc, then let tuples arrive: they
  // accumulate in the hold buffer (the stabilization window).
  AuroraEngine& engine = system_->node(n1_).engine();
  BoxId f = deployed.boxes.at("f").box;
  ASSERT_OK_AND_ASSIGN(ArcId arc, engine.FindArcInto(f, 0));
  ASSERT_OK(engine.ChokeArc(arc));
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(system_->node(n1_).Inject("in", ABTuple(i, 5)));
  }
  sim_.RunFor(SimDuration::Millis(50));
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(engine.HeldTupleCount(arc), 20u);

  // The slide must carry the held tuples to the new location.
  BoxSlider slider(system_.get());
  ASSERT_OK_AND_ASSIGN(
      SlideResult result,
      slider.Slide(&deployed, "f", n0_, SlideMode::kRemoteDefinition));
  EXPECT_EQ(result.held_reinjected, 20u);
  sim_.RunFor(SimDuration::Seconds(2));
  ASSERT_EQ(out.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(GetInt(out[i], "A"), i);
  }
}

TEST_F(SlideTest, StateMigrationPreservesOpenWindow) {
  GlobalQuery q;
  ASSERT_OK(q.AddInput("in", SchemaAB()));
  ASSERT_OK(q.AddBox("t", TumbleSpec("cnt", "B", {"A"})));
  ASSERT_OK(q.AddOutput("out"));
  ASSERT_OK(q.ConnectInputToBox("in", "t"));
  ASSERT_OK(q.ConnectBoxToOutput("t", 0, "out"));
  ASSERT_OK_AND_ASSIGN(DeployedQuery deployed,
                       DeployQuery(system_.get(), q, {{"t", n0_}}));
  std::vector<Tuple> out;
  auto collect = [&](const Tuple& t, SimTime) { out.push_back(t); };
  ASSERT_OK(system_->CollectOutput(n0_, "out", collect));

  // Open a window: three tuples with A=7.
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(system_->node(n0_).Inject("in", ABTuple(7, i)));
  }
  sim_.RunFor(SimDuration::Millis(50));
  EXPECT_EQ(out.size(), 0u);

  BoxSlider slider(system_.get());
  ASSERT_OK_AND_ASSIGN(
      SlideResult result,
      slider.Slide(&deployed, "t", n1_, SlideMode::kStateMigration));
  (void)result;

  // Close the window after the move: count must include pre-move tuples.
  ASSERT_OK(system_->node(n0_).Inject("in", ABTuple(8, 0)));
  sim_.RunFor(SimDuration::Seconds(2));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(GetInt(out[0], "A"), 7);
  EXPECT_EQ(GetInt(out[0], "Result"), 3);
}

TEST_F(SlideTest, RemoteDefinitionDrainsStateFirst) {
  GlobalQuery q;
  ASSERT_OK(q.AddInput("in", SchemaAB()));
  ASSERT_OK(q.AddBox("t", TumbleSpec("cnt", "B", {"A"})));
  ASSERT_OK(q.AddOutput("out"));
  ASSERT_OK(q.ConnectInputToBox("in", "t"));
  ASSERT_OK(q.ConnectBoxToOutput("t", 0, "out"));
  ASSERT_OK_AND_ASSIGN(DeployedQuery deployed,
                       DeployQuery(system_.get(), q, {{"t", n0_}}));
  std::vector<Tuple> out;
  ASSERT_OK(system_->CollectOutput(
      n0_, "out", [&](const Tuple& t, SimTime) { out.push_back(t); }));

  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(system_->node(n0_).Inject("in", ABTuple(7, i)));
  }
  sim_.RunFor(SimDuration::Millis(50));

  BoxSlider slider(system_.get());
  ASSERT_OK(slider
                .Slide(&deployed, "t", n1_, SlideMode::kRemoteDefinition)
                .status());
  // The open (A=7, cnt=3) window was flushed downstream, not lost.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(GetInt(out[0], "A"), 7);
  EXPECT_EQ(GetInt(out[0], "Result"), 3);

  // The fresh box on n1 keeps counting new arrivals.
  ASSERT_OK(system_->node(n0_).Inject("in", ABTuple(9, 0)));
  ASSERT_OK(system_->node(n0_).Inject("in", ABTuple(10, 0)));
  sim_.RunFor(SimDuration::Seconds(2));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(GetInt(out[1], "A"), 9);
  EXPECT_EQ(GetInt(out[1], "Result"), 1);
}

TEST_F(SlideTest, SlideToIncapableNodeFails) {
  GlobalQuery q;
  ASSERT_OK(q.AddInput("in", SchemaAB()));
  ASSERT_OK(q.AddBox("t", TumbleSpec("cnt", "B", {"A"})));
  ASSERT_OK(q.AddOutput("out"));
  ASSERT_OK(q.ConnectInputToBox("in", "t"));
  ASSERT_OK(q.ConnectBoxToOutput("t", 0, "out"));
  ASSERT_OK_AND_ASSIGN(DeployedQuery deployed,
                       DeployQuery(system_.get(), q, {{"t", n0_}}));
  BoxSlider slider(system_.get());
  // The weak sensor node supports only filters (§5.1).
  auto result = slider.Slide(&deployed, "t", sensor_);
  EXPECT_TRUE(result.status().IsFailedPrecondition());
  // A filter CAN slide to the sensor node.
  DeployedQuery filter_q = DeployFilterQuery(n1_);
  auto ok = slider.Slide(&filter_q, "f", sensor_);
  EXPECT_OK(ok.status());
}

}  // namespace
}  // namespace aurora
