// Naming, discovery, and source routing (paper §4.1–4.2): deployments
// registered in the DHT catalog; sources push to any node and events are
// forwarded via catalog lookups; locations track load-sharing moves.
#include <gtest/gtest.h>

#include "distributed/box_slider.h"
#include "distributed/catalog_binding.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::SchemaAB;

class CatalogBindingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    system_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(),
                                                 StarOptions{});
    for (int i = 0; i < 3; ++i) {
      ASSERT_OK_AND_ASSIGN(
          NodeId id,
          system_->AddNode(NodeOptions{"n" + std::to_string(i), 1.0, {}}));
      ASSERT_OK(catalog_.AddNode(id, "n" + std::to_string(i)));
    }
    net_->FullMesh(LinkOptions{});
    binding_ = std::make_unique<CatalogBinding>(system_.get(), &catalog_,
                                                "acme");
    ASSERT_OK(query_.AddInput("ticks", SchemaAB()));
    ASSERT_OK(query_.AddBox("t", TumbleSpec("cnt", "B", {"A"})));
    ASSERT_OK(query_.AddOutput("out"));
    ASSERT_OK(query_.ConnectInputToBox("ticks", "t"));
    ASSERT_OK(query_.ConnectBoxToOutput("t", 0, "out"));
    ASSERT_OK_AND_ASSIGN(deployed_,
                         DeployQuery(system_.get(), query_, {{"t", 1}}));
    ASSERT_OK(binding_->RegisterDeployment("tickcount", query_, deployed_));
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> system_;
  DhtCatalog catalog_;
  std::unique_ptr<CatalogBinding> binding_;
  GlobalQuery query_;
  DeployedQuery deployed_;
};

TEST_F(CatalogBindingTest, RegistrationIsDiscoverable) {
  // The stream entry holds the home node and decodable metadata.
  ASSERT_OK_AND_ASSIGN(auto stream,
                       catalog_.Get(0, QualifiedName{"acme", "stream/ticks"}));
  EXPECT_EQ(stream.entry.kind, "stream");
  EXPECT_EQ(stream.entry.locations, std::vector<NodeId>{1});
  Decoder dec(stream.entry.payload);
  ASSERT_OK_AND_ASSIGN(std::string input_name, dec.GetString());
  EXPECT_EQ(input_name, "ticks");
  ASSERT_OK_AND_ASSIGN(SchemaPtr schema, dec.GetSchema());
  EXPECT_TRUE(schema->Equals(*SchemaAB()));
  // The query piece records the running location and the spec.
  ASSERT_OK_AND_ASSIGN(std::vector<NodeId> where,
                       binding_->LookupBox("tickcount", "t", 2));
  EXPECT_EQ(where, std::vector<NodeId>{1});
}

TEST_F(CatalogBindingTest, SourceRoutingForwardsToHome) {
  std::vector<Tuple> out;
  ASSERT_OK(system_->CollectOutput(
      1, "out", [&](const Tuple& t, SimTime) { out.push_back(t); }));
  // The source pushes to node 0 and node 2; the catalog routes everything
  // to the input's home (node 1).
  for (int i = 0; i < 10; ++i) {
    Tuple t = MakeTuple(SchemaAB(), {Value(i), Value(0)});
    ASSERT_OK(binding_->RouteSourceTuple(i % 2 == 0 ? 0 : 2, "ticks", t));
  }
  sim_.RunFor(SimDuration::Seconds(1));
  // 9 groups closed (each A=i its own run).
  EXPECT_EQ(out.size(), 9u);
  EXPECT_EQ(binding_->forwards(), 10u);
  EXPECT_EQ(binding_->direct_deliveries(), 0u);
  // Forwarding used the overlay (bytes on the wire).
  EXPECT_GT(net_->LinkBytesSent(0, 1) + net_->LinkBytesSent(2, 1), 0u);
}

TEST_F(CatalogBindingTest, DirectDeliveryAtHomeNode) {
  Tuple t = MakeTuple(SchemaAB(), {Value(1), Value(0)});
  ASSERT_OK(binding_->RouteSourceTuple(1, "ticks", t));
  EXPECT_EQ(binding_->direct_deliveries(), 1u);
  EXPECT_EQ(binding_->forwards(), 0u);
}

TEST_F(CatalogBindingTest, UnknownStreamIsNotFound) {
  Tuple t = MakeTuple(SchemaAB(), {Value(1), Value(0)});
  Status st = binding_->RouteSourceTuple(0, "nope", t);
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();
}

TEST_F(CatalogBindingTest, MoveUpdatesLocation) {
  BoxSlider slider(system_.get());
  ASSERT_OK_AND_ASSIGN(SlideResult moved, slider.Slide(&deployed_, "t", 2));
  (void)moved;
  ASSERT_OK(binding_->UpdateBoxLocation("tickcount", "t",
                                        deployed_.boxes.at("t").node));
  ASSERT_OK_AND_ASSIGN(std::vector<NodeId> where,
                       binding_->LookupBox("tickcount", "t", 0));
  EXPECT_EQ(where, std::vector<NodeId>{2});
}

}  // namespace
}  // namespace aurora
