// Medusa federation (§3.2, §4.4, §7.2): participants, content contracts
// with metered payments, suggested contracts, remote definition with
// authorization, and movement-contract oracles.
#include <gtest/gtest.h>

#include "medusa/medusa_system.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

class MedusaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    star_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(),
                                               StarOptions{});
    ASSERT_OK_AND_ASSIGN(mit_node_,
                         star_->AddNode(NodeOptions{"mit0", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(brown_node_,
                         star_->AddNode(NodeOptions{"brown0", 1.0, {}}));
    net_->FullMesh(LinkOptions{});
    medusa_ = std::make_unique<MedusaSystem>(star_.get(), MedusaOptions{});
    ASSERT_OK_AND_ASSIGN(
        mit_, medusa_->AddParticipant("mit", {mit_node_}, 1000.0, 0.001));
    ASSERT_OK_AND_ASSIGN(
        brown_,
        medusa_->AddParticipant("brown", {brown_node_}, 1000.0, 0.001));
  }

  // A producer filter at MIT feeding an output at Brown across the
  // participant boundary. Returns the crossing stream name.
  std::string DeployCrossBoundaryQuery() {
    EXPECT_OK(query_.AddInput("quotes", SchemaAB()));
    EXPECT_OK(query_.AddBox("produce", FilterSpec(Predicate::True())));
    EXPECT_OK(query_.AddBox("consume", FilterSpec(Predicate::True())));
    EXPECT_OK(query_.AddOutput("out"));
    EXPECT_OK(query_.ConnectInputToBox("quotes", "produce"));
    EXPECT_OK(query_.ConnectBoxes("produce", 0, "consume", 0));
    EXPECT_OK(query_.ConnectBoxToOutput("consume", 0, "out"));
    auto deployed = DeployQuery(star_.get(), query_,
                                {{"produce", mit_node_},
                                 {"consume", brown_node_}});
    EXPECT_TRUE(deployed.ok()) << deployed.status().ToString();
    deployed_ = *std::move(deployed);
    return deployed_.remote_streams.at("produce->consume");
  }

  void Inject(int n) {
    for (int i = 0; i < n; ++i) {
      sim_.ScheduleAt(SimTime::Millis(i), [this, i]() {
        (void)star_->node(mit_node_).Inject(
            "quotes", MakeTuple(SchemaAB(), {Value(i), Value(i % 10)}));
      });
    }
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> star_;
  std::unique_ptr<MedusaSystem> medusa_;
  GlobalQuery query_;
  DeployedQuery deployed_;
  Participant* mit_ = nullptr;
  Participant* brown_ = nullptr;
  NodeId mit_node_ = -1, brown_node_ = -1;
};

TEST_F(MedusaTest, ParticipantsOwnDisjointNodes) {
  ASSERT_OK_AND_ASSIGN(std::string owner,
                       medusa_->ParticipantOfNode(mit_node_));
  EXPECT_EQ(owner, "mit");
  // A node cannot belong to two participants.
  auto dup = medusa_->AddParticipant("spy", {mit_node_}, 0, 0.1);
  EXPECT_TRUE(dup.status().IsAlreadyExists());
}

TEST_F(MedusaTest, ContentContractMetersMessagesAndPays) {
  std::string stream = DeployCrossBoundaryQuery();
  ASSERT_OK_AND_ASSIGN(
      int id, medusa_->EstablishContentContract(
                  "mit", "brown", stream, /*price=*/0.5,
                  SimDuration::Seconds(100)));
  medusa_->Start();
  Inject(200);
  sim_.RunUntil(SimTime::Seconds(2));

  ASSERT_OK_AND_ASSIGN(const ContentContract* c,
                       medusa_->GetContentContract(id));
  EXPECT_EQ(c->messages_settled, 200u);
  EXPECT_DOUBLE_EQ(c->total_paid, 100.0);
  // "the receiving participant always pays the sender".
  EXPECT_DOUBLE_EQ(mit_->balance(), 1100.0);
  EXPECT_DOUBLE_EQ(brown_->balance(), 900.0);
}

TEST_F(MedusaTest, ContractRequiresSellerToOwnSource) {
  std::string stream = DeployCrossBoundaryQuery();
  auto wrong = medusa_->EstablishContentContract("brown", "mit", stream, 0.1,
                                                 SimDuration::Seconds(1));
  EXPECT_TRUE(wrong.status().IsFailedPrecondition());
}

TEST_F(MedusaTest, ContractExpiresAfterPeriod) {
  std::string stream = DeployCrossBoundaryQuery();
  ASSERT_OK_AND_ASSIGN(
      int id, medusa_->EstablishContentContract(
                  "mit", "brown", stream, 0.5, SimDuration::Millis(500)));
  medusa_->Start();
  Inject(2000);
  sim_.RunUntil(SimTime::Seconds(3));
  ASSERT_OK_AND_ASSIGN(const ContentContract* c,
                       medusa_->GetContentContract(id));
  EXPECT_FALSE(c->active);
  // Only messages within the period were billed.
  EXPECT_LT(c->messages_settled, 800u);
}

TEST_F(MedusaTest, SuggestedContractSwitchesSeller) {
  std::string stream = DeployCrossBoundaryQuery();
  // A third participant mirrors the content.
  ASSERT_OK_AND_ASSIGN(NodeId tufts_node,
                       star_->AddNode(NodeOptions{"tufts0", 1.0, {}}));
  net_->FullMesh(LinkOptions{});
  ASSERT_OK(medusa_->AddParticipant("tufts", {tufts_node}, 1000.0, 0.001)
                .status());
  ASSERT_OK_AND_ASSIGN(
      int id, medusa_->EstablishContentContract(
                  "mit", "brown", stream, 0.5, SimDuration::Seconds(100)));
  // MIT wants out of the path and points Brown at Tufts. (Tufts must carry
  // the stream; we reuse MIT's stream name here to exercise validation.)
  auto rejected =
      medusa_->SuggestContract("brown", id, "tufts", stream, true);
  EXPECT_TRUE(rejected.status().IsFailedPrecondition());  // only the seller
  // Buyer may also ignore the suggestion.
  ASSERT_OK_AND_ASSIGN(int same,
                       medusa_->SuggestContract("mit", id, "tufts", stream,
                                                /*accept=*/false));
  EXPECT_EQ(same, id);
  EXPECT_EQ(medusa_->suggestions().size(), 1u);
}

TEST_F(MedusaTest, RemoteDefinitionRequiresAuthorizationAndOfferedKind) {
  DeployCrossBoundaryQuery();
  OperatorSpec filter =
      FilterSpec(Predicate::Compare("B", CompareOp::kGe, Value(8)));
  // Find MIT's relay output feeding the boundary stream.
  std::string output_name;
  for (const auto& [name, binding] : star_->node(mit_node_).bindings()) {
    output_name = name;
  }
  ASSERT_FALSE(output_name.empty());

  // Not authorized yet.
  auto denied = medusa_->RemoteDefine("brown", "mit", mit_node_, output_name,
                                      filter);
  EXPECT_TRUE(denied.status().IsFailedPrecondition());
  mit_->AuthorizeRemoteDefiner("brown");
  // Authorized but filter not offered.
  auto not_offered = medusa_->RemoteDefine("brown", "mit", mit_node_,
                                           output_name, filter);
  EXPECT_TRUE(not_offered.status().IsFailedPrecondition());
  mit_->OfferOperatorKind("filter");
  ASSERT_OK_AND_ASSIGN(BoxId box, medusa_->RemoteDefine("brown", "mit",
                                                        mit_node_, output_name,
                                                        filter));
  EXPECT_TRUE(star_->node(mit_node_).engine().IsBoxInitialized(box));
}

TEST_F(MedusaTest, RemoteDefinitionCustomizesContentAtSource) {
  std::string stream = DeployCrossBoundaryQuery();
  mit_->AuthorizeRemoteDefiner("brown");
  mit_->OfferOperatorKind("filter");
  std::string output_name;
  for (const auto& [name, binding] : star_->node(mit_node_).bindings()) {
    output_name = name;
  }
  // Brown only wants B == 0 — one tenth of the stream.
  ASSERT_OK(medusa_->RemoteDefine(
                     "brown", "mit", mit_node_, output_name,
                     FilterSpec(Predicate::Compare("B", CompareOp::kEq,
                                                   Value(0))))
                .status());
  std::vector<Tuple> out;
  ASSERT_OK(star_->CollectOutput(brown_node_, "out",
                                 [&](const Tuple& t, SimTime) {
                                   out.push_back(t);
                                 }));
  Inject(100);
  sim_.RunUntil(SimTime::Seconds(2));
  // Only the customized content crossed the boundary.
  EXPECT_EQ(out.size(), 10u);
  for (const auto& t : out) EXPECT_EQ(t.Get("B").AsInt(), 0);
}

TEST_F(MedusaTest, MovementContractOracleBalancesLoad) {
  // A heavy box at MIT; Brown idles. The movement contract's oracles must
  // hand the box to Brown, and MIT pays Brown for processing.
  ASSERT_OK(query_.AddInput("quotes", SchemaAB()));
  OperatorSpec heavy = FilterSpec(Predicate::True());
  heavy.SetParam("cost_us", Value(900.0));
  ASSERT_OK(query_.AddBox("hot", heavy));
  ASSERT_OK(query_.AddOutput("out"));
  ASSERT_OK(query_.ConnectInputToBox("quotes", "hot"));
  ASSERT_OK(query_.ConnectBoxToOutput("hot", 0, "out"));
  ASSERT_OK_AND_ASSIGN(deployed_,
                       DeployQuery(star_.get(), query_, {{"hot", mit_node_}}));
  ASSERT_OK_AND_ASSIGN(
      int id, medusa_->EstablishMovementContract(
                  "mit", mit_node_, "brown", brown_node_, "hot", &deployed_,
                  /*price_a=*/2.0, /*price_b=*/2.0));
  (void)id;
  medusa_->Start();
  for (int i = 0; i < 3000; ++i) {
    sim_.ScheduleAt(SimTime::Millis(i / 2), [this, i]() {
      (void)star_->node(mit_node_).Inject(
          "quotes", MakeTuple(SchemaAB(), {Value(i), Value(0)}));
    });
  }
  sim_.RunUntil(SimTime::Seconds(4));

  EXPECT_GE(medusa_->total_switches(), 1);
  EXPECT_EQ(deployed_.boxes.at("hot").node, brown_node_);
  // Brown profits from hosting; MIT paid for the service.
  EXPECT_GT(brown_->profit(), 0.0);
  EXPECT_LT(mit_->profit(), 0.0);
  // The economy conserves currency.
  EXPECT_DOUBLE_EQ(mit_->balance() + brown_->balance(), 2000.0);
}

TEST_F(MedusaTest, UnprofitableHostingIsRefused) {
  ASSERT_OK(query_.AddInput("quotes", SchemaAB()));
  OperatorSpec heavy = FilterSpec(Predicate::True());
  heavy.SetParam("cost_us", Value(900.0));
  ASSERT_OK(query_.AddBox("hot", heavy));
  ASSERT_OK(query_.AddOutput("out"));
  ASSERT_OK(query_.ConnectInputToBox("quotes", "hot"));
  ASSERT_OK(query_.ConnectBoxToOutput("hot", 0, "out"));
  ASSERT_OK_AND_ASSIGN(deployed_,
                       DeployQuery(star_.get(), query_, {{"hot", mit_node_}}));
  // Brown's hosting price (price_b) is below its marginal cost
  // (900us * 0.001 $/us = 0.9 per tuple): it must refuse the hand-off.
  ASSERT_OK(medusa_
                ->EstablishMovementContract("mit", mit_node_, "brown",
                                            brown_node_, "hot", &deployed_,
                                            0.01, /*price_b=*/0.0001)
                .status());
  medusa_->Start();
  for (int i = 0; i < 2000; ++i) {
    sim_.ScheduleAt(SimTime::Millis(i / 2), [this, i]() {
      (void)star_->node(mit_node_).Inject(
          "quotes", MakeTuple(SchemaAB(), {Value(i), Value(0)}));
    });
  }
  sim_.RunUntil(SimTime::Seconds(3));
  EXPECT_EQ(medusa_->total_switches(), 0);
  EXPECT_EQ(deployed_.boxes.at("hot").node, mit_node_);
}

}  // namespace
}  // namespace aurora
