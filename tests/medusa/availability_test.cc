// Content-contract availability clauses (§7.2): "An optional availability
// clause can be added to specify the amount of outage that can be
// tolerated, as a guarantee on the fraction of uptime."
#include <gtest/gtest.h>

#include "medusa/medusa_system.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

class AvailabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    star_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(),
                                               StarOptions{});
    ASSERT_OK_AND_ASSIGN(seller_node_,
                         star_->AddNode(NodeOptions{"seller0", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(buyer_node_,
                         star_->AddNode(NodeOptions{"buyer0", 1.0, {}}));
    net_->FullMesh(LinkOptions{});
    medusa_ = std::make_unique<MedusaSystem>(star_.get(), MedusaOptions{});
    ASSERT_OK(medusa_->AddParticipant("seller", {seller_node_}, 1000, 0.001)
                  .status());
    ASSERT_OK(medusa_->AddParticipant("buyer", {buyer_node_}, 1000, 0.001)
                  .status());

    GlobalQuery q;
    ASSERT_OK(q.AddInput("feed", SchemaAB()));
    ASSERT_OK(q.AddBox("src", FilterSpec(Predicate::True())));
    ASSERT_OK(q.AddBox("dst", FilterSpec(Predicate::True())));
    ASSERT_OK(q.AddOutput("out"));
    ASSERT_OK(q.ConnectInputToBox("feed", "src"));
    ASSERT_OK(q.ConnectBoxes("src", 0, "dst", 0));
    ASSERT_OK(q.ConnectBoxToOutput("dst", 0, "out"));
    ASSERT_OK_AND_ASSIGN(
        deployed_, DeployQuery(star_.get(), q,
                               {{"src", seller_node_}, {"dst", buyer_node_}}));
    stream_ = deployed_.remote_streams.at("src->dst");
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> star_;
  std::unique_ptr<MedusaSystem> medusa_;
  DeployedQuery deployed_;
  std::string stream_;
  NodeId seller_node_ = -1, buyer_node_ = -1;
};

TEST_F(AvailabilityTest, ExtendedOutageVoidsGuaranteedContract) {
  ASSERT_OK_AND_ASSIGN(
      int id, medusa_->EstablishContentContract(
                  "seller", "buyer", stream_, 0.1, SimDuration::Seconds(100),
                  /*availability_guarantee=*/0.9));
  medusa_->Start();
  // Traffic flows briefly; then the seller's node goes down for most of
  // the observation window (uptime << 90%).
  for (int i = 0; i < 50; ++i) {
    sim_.ScheduleAt(SimTime::Millis(i * 10), [this, i]() {
      (void)star_->node(seller_node_).Inject(
          "feed", MakeTuple(SchemaAB(), {Value(i), Value(0)}));
    });
  }
  sim_.ScheduleAt(SimTime::Millis(600),
                  [this]() { star_->node(seller_node_).SetUp(false); });
  sim_.RunUntil(SimTime::Seconds(10));

  ASSERT_OK_AND_ASSIGN(const ContentContract* c,
                       medusa_->GetContentContract(id));
  EXPECT_FALSE(c->active);  // guarantee breached → contract void
  EXPECT_GT(c->down_checks, 0u);
}

TEST_F(AvailabilityTest, NoGuaranteeMeansOutageJustPausesBilling) {
  ASSERT_OK_AND_ASSIGN(
      int id, medusa_->EstablishContentContract(
                  "seller", "buyer", stream_, 0.1, SimDuration::Seconds(100),
                  /*availability_guarantee=*/0.0));
  medusa_->Start();
  sim_.ScheduleAt(SimTime::Millis(600),
                  [this]() { star_->node(seller_node_).SetUp(false); });
  sim_.ScheduleAt(SimTime::Seconds(5),
                  [this]() { star_->node(seller_node_).SetUp(true); });
  for (int i = 0; i < 50; ++i) {
    sim_.ScheduleAt(SimTime::Millis(5500 + i * 10), [this, i]() {
      (void)star_->node(seller_node_).Inject(
          "feed", MakeTuple(SchemaAB(), {Value(i), Value(0)}));
    });
  }
  sim_.RunUntil(SimTime::Seconds(8));
  ASSERT_OK_AND_ASSIGN(const ContentContract* c,
                       medusa_->GetContentContract(id));
  EXPECT_TRUE(c->active);  // no clause: the contract survives the outage
  EXPECT_GT(c->messages_settled, 0u);  // post-recovery traffic billed
}

}  // namespace
}  // namespace aurora
