#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace aurora {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("stream 'x'");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "stream 'x'");
  EXPECT_EQ(st.ToString(), "NotFound: stream 'x'");
}

TEST(StatusTest, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("m").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("m").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("m").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("m").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("m").IsResourceExhausted());
  EXPECT_TRUE(Status::Unavailable("m").IsUnavailable());
  EXPECT_TRUE(Status::Internal("m").IsInternal());
  EXPECT_TRUE(Status::NotImplemented("m").IsNotImplemented());
  EXPECT_TRUE(Status::TimedOut("m").IsTimedOut());
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(a, b);
  Status c;
  c = a;
  EXPECT_EQ(c.message(), "boom");
  a = Status::OK();
  EXPECT_TRUE(a.ok());
  EXPECT_FALSE(c.ok());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::NotFound("inner"); };
  auto outer = [&]() -> Status {
    AURORA_RETURN_NOT_OK(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("too big"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueUnsafe();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Unavailable("down");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    AURORA_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 10);
  EXPECT_TRUE(outer(true).status().IsUnavailable());
}

}  // namespace
}  // namespace aurora
