#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace aurora {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(5.0);
  double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.2);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(ZipfTest, SkewZeroIsRoughlyUniform) {
  ZipfGenerator zipf(10, 0.0);
  Rng rng(17);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[zipf.Sample(&rng)]++;
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(ZipfTest, HighSkewConcentratesOnHead) {
  ZipfGenerator zipf(1000, 1.2);
  Rng rng(19);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(&rng) < 10) ++head;
  }
  // With skew 1.2 the top 10 of 1000 keys draw well over a third of mass.
  EXPECT_GT(static_cast<double>(head) / n, 0.35);
}

TEST(ZipfTest, SamplesAlwaysInRange) {
  ZipfGenerator zipf(50, 0.8);
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 50u);
  }
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace aurora
