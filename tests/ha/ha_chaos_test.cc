// HA models under injected message loss and duplicate delivery (satellite
// of the fault-injection subsystem): the process-pair baseline must keep
// its "only in-process tuples redone" invariant, per-stream dedup must
// absorb chaos duplication, and the §6.4 VM spectrum must stay monotone.
#include <gtest/gtest.h>

#include "fault/injector.h"
#include "ha/process_pair.h"
#include "ha/vm_tradeoff.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

class HaChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    system_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(),
                                                 StarOptions{});
    ASSERT_OK_AND_ASSIGN(s1_, system_->AddNode(NodeOptions{"s1", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(s2_, system_->AddNode(NodeOptions{"s2", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(s3_, system_->AddNode(NodeOptions{"s3", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(backup_,
                         system_->AddNode(NodeOptions{"bk", 1.0, {}}));
    net_->FullMesh(LinkOptions{});
  }

  DeployedQuery DeployChain() {
    EXPECT_OK(query_.AddInput("in", SchemaAB()));
    EXPECT_OK(query_.AddBox("f", FilterSpec(Predicate::True())));
    EXPECT_OK(query_.AddBox("m", MapSpec({{"A", Expr::FieldRef("A")},
                                          {"B", Expr::FieldRef("B")}})));
    EXPECT_OK(query_.AddBox("t", TumbleSpec("cnt", "B", {"A"})));
    EXPECT_OK(query_.AddOutput("out"));
    EXPECT_OK(query_.ConnectInputToBox("in", "f"));
    EXPECT_OK(query_.ConnectBoxes("f", 0, "m", 0));
    EXPECT_OK(query_.ConnectBoxes("m", 0, "t", 0));
    EXPECT_OK(query_.ConnectBoxToOutput("t", 0, "out"));
    auto deployed = DeployQuery(system_.get(), query_,
                                {{"f", s1_}, {"m", s2_}, {"t", s3_}});
    EXPECT_TRUE(deployed.ok()) << deployed.status().ToString();
    return *std::move(deployed);
  }

  void InjectTimed(int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      sim_.ScheduleAt(SimTime::Millis(i), [this, i]() {
        Tuple t = MakeTuple(SchemaAB(), {Value(i), Value(i)});
        (void)system_->node(s1_).Inject("in", t);
      });
    }
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> system_;
  GlobalQuery query_;
  NodeId s1_ = -1, s2_ = -1, s3_ = -1, backup_ = -1;
};

TEST_F(HaChaosTest, ProcessPairRedoesOnlyInProcessTuplesUnderChaos) {
  DeployedQuery deployed = DeployChain();
  InjectTimed(0, 1500);

  ProcessPairModel pp(system_.get(), s2_, backup_);
  pp.Start();

  // Loss and duplication on both the ingest hop and the checkpoint path.
  FaultPlan plan;
  plan.PerturbLinkAt(SimTime::Millis(0), s1_, s2_, /*drop_p=*/0.03,
                     /*dup_p=*/0.05);
  plan.PerturbLinkAt(SimTime::Millis(0), s2_, backup_, /*drop_p=*/0.03,
                     /*dup_p=*/0.05);
  plan.CrashAt(SimTime::Millis(1200), s2_);
  InjectorOptions iopts;
  iopts.seed = 11;
  Injector injector(system_.get(), plan, iopts);
  ASSERT_OK(injector.Arm());

  size_t in_process_at_crash = 0;
  sim_.ScheduleAt(SimTime::Millis(1200), [&]() {
    in_process_at_crash = system_->node(s2_).engine().TotalQueuedTuples();
  });

  sim_.RunUntil(SimTime::Seconds(3));

  // The pair mirrored every processed tuple despite chaos on its links.
  EXPECT_GT(pp.checkpoint_messages(), 0u);
  // Invariant: failover work is exactly what was queued at the primary at
  // failure time — chaos duplicates must not inflate it, because the
  // per-stream dedup watermark suppressed them before they enqueued.
  EXPECT_EQ(pp.RecoveryWorkTuples(), in_process_at_crash);
  EXPECT_GT(system_->node(s2_).duplicate_tuples_dropped(), 0u);
}

TEST_F(HaChaosTest, UpstreamBackupRecoveryHoldsDeliveryUnderLossAndDup) {
  DeployedQuery deployed = DeployChain();
  uint64_t delivered = 0;
  ASSERT_OK(system_->CollectOutput(
      s3_, "out", [&](const Tuple&, SimTime) { ++delivered; }));
  InjectTimed(0, 2000);

  HaOptions opts;
  // Ride out lost heartbeats on the perturbed links instead of convicting
  // a live server on one unlucky draw.
  opts.suspicion_threshold = 2;
  HaManager ha(system_.get(), opts);
  ASSERT_OK(ha.Protect(&deployed, &query_));

  FaultPlan plan;
  plan.PerturbLinkAt(SimTime::Millis(0), s1_, s2_, /*drop_p=*/0.02,
                     /*dup_p=*/0.05);
  plan.PerturbLinkAt(SimTime::Millis(0), s2_, s3_, /*drop_p=*/0.02,
                     /*dup_p=*/0.05);
  plan.CrashAt(SimTime::Millis(900), s2_);
  InjectorOptions iopts;
  iopts.seed = 23;
  iopts.ha = &ha;
  Injector injector(system_.get(), plan, iopts);
  ASSERT_OK(injector.Arm());

  sim_.RunUntil(SimTime::Seconds(4));

  EXPECT_EQ(ha.recoveries(), 1);
  EXPECT_GT(ha.replayed_tuples(), 0u);
  // Chaos duplicates were suppressed at the receivers; the only source of
  // over-delivery is the recovery replay itself (upstream backup is
  // at-least-once across a failover), so output stays bounded by
  // inputs + replayed log tuples rather than growing with chaos dup_p.
  uint64_t dups = 0;
  for (size_t i = 0; i < system_->num_nodes(); ++i) {
    dups += system_->node(static_cast<NodeId>(i)).duplicate_tuples_dropped();
  }
  EXPECT_GT(dups, 0u);
  EXPECT_GT(delivered, 500u);
  EXPECT_LE(delivered, 2000u + ha.replayed_tuples());
}

TEST(VmTradeoffChaosTest, SpectrumStaysMonotoneBetweenTheTwoProtocols) {
  auto points = ComputeVmTradeoff(/*n_boxes=*/8, /*tuples_in_flight=*/500,
                                  /*box_cost_us=*/20.0);
  ASSERT_EQ(points.size(), 8u);
  for (size_t i = 1; i < points.size(); ++i) {
    // Runtime overhead rises with K; recovery work falls with K (§6.4).
    EXPECT_GT(points[i].runtime_messages_per_tuple,
              points[i - 1].runtime_messages_per_tuple);
    EXPECT_LT(points[i].recovery_box_activations,
              points[i - 1].recovery_box_activations);
    EXPECT_LT(points[i].recovery_time_ms, points[i - 1].recovery_time_ms);
  }
  // K=1 is upstream backup (one message per tuple); K=n approaches the
  // process-pair cost of one message per box activation.
  EXPECT_DOUBLE_EQ(points.front().runtime_messages_per_tuple, 1.0);
  EXPECT_NEAR(points.back().runtime_messages_per_tuple, 8.0, 1e-9);
}

}  // namespace
}  // namespace aurora
