// Recovery edge cases beyond the basic middle-server crash: failure of the
// terminal server (application output must move with it), successive
// failures of different servers, and the §6.4 virtual-machine model.
#include <gtest/gtest.h>

#include <set>

#include "ha/upstream_backup.h"
#include "ha/vm_tradeoff.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::SchemaAB;

class RecoveryEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    system_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(),
                                                 StarOptions{});
    ASSERT_OK_AND_ASSIGN(s1_, system_->AddNode(NodeOptions{"s1", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(s2_, system_->AddNode(NodeOptions{"s2", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(s3_, system_->AddNode(NodeOptions{"s3", 1.0, {}}));
    net_->FullMesh(LinkOptions{});
    ASSERT_OK(query_.AddInput("in", SchemaAB()));
    ASSERT_OK(query_.AddBox("f", FilterSpec(Predicate::Compare(
                                     "B", CompareOp::kGe, Value(0)))));
    ASSERT_OK(query_.AddBox(
        "m", MapSpec({{"A", Expr::FieldRef("A")}, {"B", Expr::FieldRef("B")}})));
    ASSERT_OK(query_.AddBox("t", TumbleSpec("cnt", "B", {"A"})));
    ASSERT_OK(query_.AddOutput("out"));
    ASSERT_OK(query_.ConnectInputToBox("in", "f"));
    ASSERT_OK(query_.ConnectBoxes("f", 0, "m", 0));
    ASSERT_OK(query_.ConnectBoxes("m", 0, "t", 0));
    ASSERT_OK(query_.ConnectBoxToOutput("t", 0, "out"));
    ASSERT_OK_AND_ASSIGN(
        deployed_, DeployQuery(system_.get(), query_,
                               {{"f", s1_}, {"m", s2_}, {"t", s3_}}));
    ASSERT_OK(system_->CollectOutput(s3_, "out",
                                     [this](const Tuple& t, SimTime) {
                                       groups_.insert(GetInt(t, "A"));
                                     }));
  }

  void Inject(int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      sim_.ScheduleAt(SimTime::Millis(i), [this, i]() {
        Tuple t = MakeTuple(SchemaAB(), {Value(i), Value(i % 10)});
        (void)system_->node(s1_).Inject("in", t);
      });
    }
  }

  int Lost(int expected_groups) const {
    int lost = 0;
    for (int i = 0; i < expected_groups; ++i) {
      if (!groups_.count(i)) ++lost;
    }
    return lost;
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> system_;
  GlobalQuery query_;
  DeployedQuery deployed_;
  std::set<int64_t> groups_;
  NodeId s1_ = -1, s2_ = -1, s3_ = -1;
};

TEST_F(RecoveryEdgeTest, TerminalServerFailureMovesApplicationOutput) {
  HaManager ha(system_.get(), HaOptions{});
  ASSERT_OK(ha.Protect(&deployed_, &query_));
  Inject(0, 300);
  sim_.ScheduleAt(SimTime::Millis(150), [&]() { ha.CrashNode(s3_); });
  sim_.RunUntil(SimTime::Seconds(3));
  EXPECT_EQ(ha.recoveries(), 1);
  // The Tumble and the application output now live on s2 (the upstream
  // neighbour), and the callback still fires.
  EXPECT_EQ(deployed_.boxes.at("t").node, s2_);
  EXPECT_EQ(deployed_.outputs.at("out").first, s2_);
  EXPECT_EQ(Lost(299), 0);
}

TEST_F(RecoveryEdgeTest, SuccessiveFailuresOfDifferentServers) {
  HaManager ha(system_.get(), HaOptions{});
  ASSERT_OK(ha.Protect(&deployed_, &query_));
  Inject(0, 600);
  // s3 dies first; its piece moves to s2. Later s2 (now hosting m AND t)
  // dies too; everything ends up on s1.
  sim_.ScheduleAt(SimTime::Millis(150), [&]() { ha.CrashNode(s3_); });
  sim_.ScheduleAt(SimTime::Millis(400), [&]() { ha.CrashNode(s2_); });
  sim_.RunUntil(SimTime::Seconds(4));
  EXPECT_EQ(ha.failures_detected(), 2);
  EXPECT_EQ(ha.recoveries(), 2);
  EXPECT_EQ(deployed_.boxes.at("m").node, s1_);
  EXPECT_EQ(deployed_.boxes.at("t").node, s1_);
  EXPECT_EQ(Lost(599), 0);
}

TEST_F(RecoveryEdgeTest, SeqArrayTruncationAlsoRecoversCleanly) {
  HaOptions opts;
  opts.method = TruncationMethod::kSeqArrays;
  opts.checkpoint_interval = SimDuration::Millis(30);
  HaManager ha(system_.get(), opts);
  ASSERT_OK(ha.Protect(&deployed_, &query_));
  Inject(0, 400);
  sim_.ScheduleAt(SimTime::Millis(200), [&]() { ha.CrashNode(s2_); });
  sim_.RunUntil(SimTime::Seconds(3));
  EXPECT_GT(ha.truncated_tuples(), 100u);
  EXPECT_EQ(Lost(399), 0);
}

TEST_F(RecoveryEdgeTest, ManualRecoveryWithoutAutoDetect) {
  HaOptions opts;
  opts.auto_recover = false;
  HaManager ha(system_.get(), opts);
  ASSERT_OK(ha.Protect(&deployed_, &query_));
  Inject(0, 200);
  sim_.ScheduleAt(SimTime::Millis(100), [&]() { ha.CrashNode(s2_); });
  sim_.RunUntil(SimTime::Seconds(1));
  EXPECT_GE(ha.failures_detected(), 1);
  EXPECT_EQ(ha.recoveries(), 0);  // nothing happened automatically
  ASSERT_OK(ha.RecoverNode(s2_, s1_));
  sim_.RunUntil(SimTime::Seconds(3));
  EXPECT_EQ(Lost(199), 0);
}

TEST(VmTradeoffTest, EndpointsMatchTheTwoProtocols) {
  auto points = ComputeVmTradeoff(8, 500, 20.0);
  ASSERT_EQ(points.size(), 8u);
  // K=1: one backup message per tuple (upstream backup), full-chain redo.
  EXPECT_DOUBLE_EQ(points[0].runtime_messages_per_tuple, 1.0);
  EXPECT_DOUBLE_EQ(points[0].recovery_box_activations, 500.0 * 8);
  // K=n: one message per box activation (process pairs), one-box redo.
  EXPECT_DOUBLE_EQ(points[7].runtime_messages_per_tuple, 8.0);
  EXPECT_DOUBLE_EQ(points[7].recovery_box_activations, 500.0);
  // Monotone tradeoff in between.
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].runtime_messages_per_tuple,
              points[i - 1].runtime_messages_per_tuple);
    EXPECT_LT(points[i].recovery_box_activations,
              points[i - 1].recovery_box_activations);
  }
}

}  // namespace
}  // namespace aurora
