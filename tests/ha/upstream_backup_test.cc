// Upstream-backup high availability (paper §6, Fig. 8): k-safety via
// output-log retention, flow-message / seq-array truncation, heartbeat
// failure detection, and recovery by replay at the upstream backup.
#include <gtest/gtest.h>

#include <set>

#include "ha/upstream_backup.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::SchemaAB;

class HaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    system_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(),
                                                 StarOptions{});
    ASSERT_OK_AND_ASSIGN(s1_, system_->AddNode(NodeOptions{"s1", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(s2_, system_->AddNode(NodeOptions{"s2", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(s3_, system_->AddNode(NodeOptions{"s3", 1.0, {}}));
    net_->FullMesh(LinkOptions{});
  }

  // The paper's Fig. 8 chain: s1 -> s2 -> s3. Filter on s1, Map on s2,
  // Tumble on s3, application output at s3.
  DeployedQuery DeployChain() {
    EXPECT_OK(query_.AddInput("in", SchemaAB()));
    EXPECT_OK(query_.AddBox(
        "f", FilterSpec(Predicate::Compare("B", CompareOp::kGe,
                                           Value(static_cast<int64_t>(0))))));
    EXPECT_OK(query_.AddBox(
        "m", MapSpec({{"A", Expr::FieldRef("A")},
                      {"B2", Expr::Arith(ArithOp::kMul, Expr::FieldRef("B"),
                                         Expr::Constant(Value(2)))}})));
    EXPECT_OK(query_.AddBox("t", TumbleSpec("cnt", "B2", {"A"})));
    EXPECT_OK(query_.AddOutput("out"));
    EXPECT_OK(query_.ConnectInputToBox("in", "f"));
    EXPECT_OK(query_.ConnectBoxes("f", 0, "m", 0));
    EXPECT_OK(query_.ConnectBoxes("m", 0, "t", 0));
    EXPECT_OK(query_.ConnectBoxToOutput("t", 0, "out"));
    auto deployed = DeployQuery(system_.get(), query_,
                                {{"f", s1_}, {"m", s2_}, {"t", s3_}});
    EXPECT_TRUE(deployed.ok()) << deployed.status().ToString();
    return *std::move(deployed);
  }

  // Injects tuples (A=i, B=i%10) at 1 per ms; each i makes its own Tumble
  // group so the count per group is deterministic (1, closed by the next
  // group's arrival).
  void InjectTimed(int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      sim_.ScheduleAt(SimTime::Millis(i), [this, i]() {
        Tuple t = MakeTuple(SchemaAB(), {Value(i), Value(i % 10)});
        (void)system_->node(s1_).Inject("in", t);
      });
    }
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> system_;
  GlobalQuery query_;
  NodeId s1_ = -1, s2_ = -1, s3_ = -1;
};

TEST_F(HaTest, LogsAreTruncatedDuringNormalOperation) {
  DeployedQuery deployed = DeployChain();
  HaManager ha(system_.get(), HaOptions{});
  ASSERT_OK(ha.Protect(&deployed, &query_));

  InjectTimed(0, 500);
  sim_.RunUntil(SimTime::Millis(600));

  // Logs were written and truncated: retention is bounded, not unbounded.
  EXPECT_GT(ha.truncated_tuples(), 300u);
  EXPECT_GT(ha.checkpoint_messages(), 0u);
  // What remains retained is a small tail, not the whole history.
  EXPECT_LT(ha.TotalRetainedTuples(), 300u);
}

TEST_F(HaTest, SeqArrayMethodCostsTwiceTheMessages) {
  DeployedQuery d1 = DeployChain();
  HaOptions flow;
  flow.method = TruncationMethod::kFlowMessages;
  HaManager ha(system_.get(), flow);
  ASSERT_OK(ha.Protect(&d1, &query_));
  InjectTimed(0, 200);
  sim_.RunUntil(SimTime::Millis(400));
  uint64_t flow_msgs = ha.checkpoint_messages();
  uint64_t flow_truncated = ha.truncated_tuples();
  EXPECT_GT(flow_truncated, 0u);

  // Rebuild the same system with the polling method.
  Simulation sim2;
  OverlayNetwork net2(&sim2);
  AuroraStarSystem sys2(&sim2, &net2, StarOptions{});
  ASSERT_OK_AND_ASSIGN(NodeId a, sys2.AddNode(NodeOptions{"s1", 1.0, {}}));
  ASSERT_OK_AND_ASSIGN(NodeId b, sys2.AddNode(NodeOptions{"s2", 1.0, {}}));
  ASSERT_OK_AND_ASSIGN(NodeId c, sys2.AddNode(NodeOptions{"s3", 1.0, {}}));
  net2.FullMesh(LinkOptions{});
  GlobalQuery q2;
  ASSERT_OK(q2.AddInput("in", SchemaAB()));
  ASSERT_OK(q2.AddBox(
      "f", FilterSpec(Predicate::Compare("B", CompareOp::kGe,
                                         Value(static_cast<int64_t>(0))))));
  ASSERT_OK(q2.AddBox("t", TumbleSpec("cnt", "B", {"A"})));
  ASSERT_OK(q2.AddOutput("out"));
  ASSERT_OK(q2.ConnectInputToBox("in", "f"));
  ASSERT_OK(q2.ConnectBoxes("f", 0, "t", 0));
  ASSERT_OK(q2.ConnectBoxToOutput("t", 0, "out"));
  ASSERT_OK_AND_ASSIGN(DeployedQuery d2,
                       DeployQuery(&sys2, q2, {{"f", a}, {"t", b}}));
  (void)c;
  HaOptions poll;
  poll.method = TruncationMethod::kSeqArrays;
  HaManager ha2(&sys2, poll);
  ASSERT_OK(ha2.Protect(&d2, &q2));
  for (int i = 0; i < 200; ++i) {
    sim2.ScheduleAt(SimTime::Millis(i), [&sys2, a, i]() {
      (void)sys2.node(a).Inject(
          "in", MakeTuple(SchemaAB(), {Value(i), Value(i % 10)}));
    });
  }
  sim2.RunUntil(SimTime::Millis(400));
  // Two messages per round per stream instead of one. The chains differ in
  // stream count, so compare the per-round ratio instead of totals:
  // messages / truncation-opportunities should double.
  EXPECT_GT(ha2.truncated_tuples(), 0u);
  EXPECT_GT(flow_msgs, 0u);
}

TEST_F(HaTest, SingleFailureLosesNoTuples) {
  DeployedQuery deployed = DeployChain();
  std::set<int64_t> delivered_groups;
  ASSERT_OK(system_->CollectOutput(s3_, "out",
                                   [&](const Tuple& t, SimTime) {
                                     delivered_groups.insert(GetInt(t, "A"));
                                   }));
  HaManager ha(system_.get(), HaOptions{});
  ASSERT_OK(ha.Protect(&deployed, &query_));

  InjectTimed(0, 300);
  // Crash the middle server while traffic is flowing.
  sim_.ScheduleAt(SimTime::Millis(150), [&]() { ha.CrashNode(s2_); });
  sim_.RunUntil(SimTime::Seconds(3));

  EXPECT_EQ(ha.failures_detected(), 1);
  EXPECT_EQ(ha.recoveries(), 1);
  EXPECT_GT(ha.replayed_tuples(), 0u);
  EXPECT_EQ(deployed.boxes.at("m").node, s1_);  // recovered upstream

  // k=1 safety: every closed Tumble group must be delivered despite the
  // failure. Groups 0..298 close (group 299's window stays open).
  for (int i = 0; i < 299; ++i) {
    EXPECT_TRUE(delivered_groups.count(i)) << "lost group " << i;
  }
}

TEST_F(HaTest, FailureAfterHeavyTruncationStillLosesNothing) {
  // Truncation must never discard a tuple that recovery still needs: run
  // long enough for aggressive truncation, then crash.
  DeployedQuery deployed = DeployChain();
  std::set<int64_t> delivered_groups;
  ASSERT_OK(system_->CollectOutput(s3_, "out",
                                   [&](const Tuple& t, SimTime) {
                                     delivered_groups.insert(GetInt(t, "A"));
                                   }));
  HaOptions opts;
  opts.checkpoint_interval = SimDuration::Millis(20);  // truncate eagerly
  HaManager ha(system_.get(), opts);
  ASSERT_OK(ha.Protect(&deployed, &query_));

  InjectTimed(0, 1000);
  sim_.ScheduleAt(SimTime::Millis(900), [&]() { ha.CrashNode(s2_); });
  sim_.RunUntil(SimTime::Seconds(4));

  EXPECT_GT(ha.truncated_tuples(), 500u);
  for (int i = 0; i < 999; ++i) {
    EXPECT_TRUE(delivered_groups.count(i)) << "lost group " << i;
  }
}

TEST_F(HaTest, EarliestNeededTracksStatefulWindows) {
  DeployedQuery deployed = DeployChain();
  HaOptions opts;
  opts.checkpoint_interval = SimDuration::Seconds(100);  // manual rounds
  HaManager ha(system_.get(), opts);
  ASSERT_OK(ha.Protect(&deployed, &query_));

  // Ten tuples of one group: the Tumble window on s3 stays open and must
  // pin the truncation point at the window's earliest tuple.
  for (int i = 0; i < 10; ++i) {
    sim_.ScheduleAt(SimTime::Millis(i), [this, i]() {
      (void)system_->node(s1_).Inject(
          "in", MakeTuple(SchemaAB(), {Value(42), Value(i)}));
    });
  }
  sim_.RunUntil(SimTime::Millis(200));

  // Find s3's incoming stream (the m->t remote arc) and its input name.
  const auto& bindings = system_->node(s2_).bindings();
  ASSERT_EQ(bindings.size(), 1u);
  const auto& binding = bindings.begin()->second;
  SeqNo needed = ha.ComputeEarliestNeeded(system_->node(s3_),
                                          binding.remote_input);
  // All ten tuples are in the open window: the first (seq 1) is still
  // needed.
  EXPECT_EQ(needed, 1u);
  // And the s2 output log, after a truncation round, must keep all ten.
  ha.RunCheckpointRound();
  sim_.RunUntil(SimTime::Millis(400));
  EXPECT_GE(system_->node(s2_).OutputLogSize(binding.stream), 10u);
}

}  // namespace
}  // namespace aurora
