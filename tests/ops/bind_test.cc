// Bound-once field access: Expr::Bind / Predicate::Bind resolve attribute
// names to indices at box-init time, fail eagerly on missing fields, and the
// lazy rebind in Eval keeps evaluation correct for tuples whose schema
// differs from the bound one.
#include <gtest/gtest.h>

#include "ops/expr.h"
#include "ops/op_spec.h"
#include "ops/operator.h"
#include "ops/predicate.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

Tuple T(int64_t a, int64_t b) {
  return MakeTuple(SchemaAB(), {Value(a), Value(b)});
}

TEST(BindTest, ExprBindMissingFieldIsNotFound) {
  Expr e = Expr::FieldRef("Missing");
  EXPECT_TRUE(e.Bind(SchemaAB()).IsNotFound());
  // Nested references are checked too.
  Expr nested = Expr::Arith(ArithOp::kAdd, Expr::FieldRef("A"),
                            Expr::FieldRef("Missing"));
  EXPECT_TRUE(nested.Bind(SchemaAB()).IsNotFound());
}

TEST(BindTest, ExprEvalCorrectAfterBind) {
  Expr e = Expr::Arith(ArithOp::kMul, Expr::FieldRef("B"),
                       Expr::Constant(Value(int64_t{10})));
  ASSERT_OK(e.Bind(SchemaAB()));
  ASSERT_OK_AND_ASSIGN(Value v, e.Eval(T(1, 7)));
  EXPECT_EQ(v.AsInt(), 70);
}

TEST(BindTest, ExprRebindsLazilyOnDifferentSchema) {
  Expr e = Expr::FieldRef("A");
  ASSERT_OK(e.Bind(SchemaAB()));  // A is index 0 here
  ASSERT_OK_AND_ASSIGN(Value v1, e.Eval(T(5, 6)));
  EXPECT_EQ(v1.AsInt(), 5);
  // In this schema A sits at index 1: a stale bound index would read X.
  SchemaPtr xa = Schema::Make(
      {Field{"X", ValueType::kInt64}, Field{"A", ValueType::kInt64}});
  ASSERT_OK_AND_ASSIGN(Value v2,
                       e.Eval(MakeTuple(xa, {Value(100), Value(42)})));
  EXPECT_EQ(v2.AsInt(), 42);
  // And flipping back to the original schema still works.
  ASSERT_OK_AND_ASSIGN(Value v3, e.Eval(T(9, 1)));
  EXPECT_EQ(v3.AsInt(), 9);
}

TEST(BindTest, ExprEvalWithoutBindStillWorks) {
  // Bind is a warm cache plus eager error check, not a correctness
  // requirement: a never-bound expression evaluates fine.
  Expr e = Expr::FieldRef("B");
  ASSERT_OK_AND_ASSIGN(Value v, e.Eval(T(1, 33)));
  EXPECT_EQ(v.AsInt(), 33);
}

TEST(BindTest, PredicateBindRecursesThroughCombinators) {
  Predicate p = Predicate::And(
      Predicate::Compare("A", CompareOp::kGe, Value(int64_t{0})),
      Predicate::Or(
          Predicate::Compare("B", CompareOp::kLt, Value(int64_t{10})),
          Predicate::Not(
              Predicate::Compare("A", CompareOp::kEq, Value(int64_t{1})))));
  ASSERT_OK(p.Bind(SchemaAB()));
  EXPECT_TRUE(p.Eval(T(2, 3)));
  EXPECT_FALSE(p.Eval(T(-1, 3)));

  // A missing field anywhere in the tree surfaces through Bind.
  Predicate bad = Predicate::And(
      Predicate::True(),
      Predicate::Not(
          Predicate::Compare("Missing", CompareOp::kEq, Value(int64_t{0}))));
  EXPECT_TRUE(bad.Bind(SchemaAB()).IsNotFound());
}

TEST(BindTest, PredicateHashPartitionBindsAndEvals) {
  Predicate even = Predicate::HashPartition("A", 2, 0);
  Predicate odd = Predicate::HashPartition("A", 2, 1);
  ASSERT_OK(even.Bind(SchemaAB()));
  ASSERT_OK(odd.Bind(SchemaAB()));
  EXPECT_TRUE(Predicate::HashPartition("Missing", 2, 0)
                  .Bind(SchemaAB())
                  .IsNotFound());
  // The two partitions are complementary for any tuple.
  for (int64_t a = 0; a < 16; ++a) {
    EXPECT_NE(even.Eval(T(a, 0)), odd.Eval(T(a, 0))) << "a=" << a;
  }
}

TEST(BindTest, PredicateRebindsLazilyOnDifferentSchema) {
  Predicate p = Predicate::Compare("A", CompareOp::kEq, Value(int64_t{42}));
  ASSERT_OK(p.Bind(SchemaAB()));
  EXPECT_TRUE(p.Eval(T(42, 0)));
  SchemaPtr xa = Schema::Make(
      {Field{"X", ValueType::kInt64}, Field{"A", ValueType::kInt64}});
  EXPECT_TRUE(p.Eval(MakeTuple(xa, {Value(0), Value(42)})));
  EXPECT_FALSE(p.Eval(MakeTuple(xa, {Value(42), Value(0)})));
}

// Operator Init surfaces unresolvable fields before any tuple flows.
TEST(BindTest, FilterOpInitFailsOnMissingPredicateField) {
  OperatorSpec spec =
      FilterSpec(Predicate::Compare("Missing", CompareOp::kGe, Value(0)));
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  EXPECT_TRUE(op->Init({SchemaAB()}).IsNotFound());
}

TEST(BindTest, MapOpInitFailsOnMissingExprField) {
  OperatorSpec spec = MapSpec({{"Out", Expr::FieldRef("Missing")}});
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  EXPECT_TRUE(op->Init({SchemaAB()}).IsNotFound());
}

}  // namespace
}  // namespace aurora
