// Aggregate functions and the paper's agg/combine requirement (§5.1):
//   agg({x_1..x_n}) == combine(agg({x_1..x_k}), agg({x_{k+1}..x_n}))
// verified as a parameterized property over every combinable aggregate,
// split point, and data distribution.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ops/aggregate.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

TEST(AggregateTest, Count) {
  ASSERT_OK_AND_ASSIGN(auto agg, MakeAggregate("cnt"));
  agg->Reset();
  for (int i = 0; i < 5; ++i) agg->Update(Value(i));
  EXPECT_EQ(agg->Final().AsInt(), 5);
  EXPECT_EQ(agg->count(), 5u);
}

TEST(AggregateTest, SumKeepsIntegersIntegral) {
  ASSERT_OK_AND_ASSIGN(auto agg, MakeAggregate("sum"));
  agg->Reset();
  agg->Update(Value(2));
  agg->Update(Value(3));
  EXPECT_EQ(agg->Final().type(), ValueType::kInt64);
  EXPECT_EQ(agg->Final().AsInt(), 5);
}

TEST(AggregateTest, SumMixedBecomesDouble) {
  ASSERT_OK_AND_ASSIGN(auto agg, MakeAggregate("sum"));
  agg->Reset();
  agg->Update(Value(2));
  agg->Update(Value(0.5));
  EXPECT_EQ(agg->Final().type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(agg->Final().AsDouble(), 2.5);
}

TEST(AggregateTest, Avg) {
  ASSERT_OK_AND_ASSIGN(auto agg, MakeAggregate("avg"));
  agg->Reset();
  agg->Update(Value(2));
  agg->Update(Value(3));
  EXPECT_DOUBLE_EQ(agg->Final().AsDouble(), 2.5);
}

TEST(AggregateTest, MinMax) {
  ASSERT_OK_AND_ASSIGN(auto mn, MakeAggregate("min"));
  ASSERT_OK_AND_ASSIGN(auto mx, MakeAggregate("max"));
  mn->Reset();
  mx->Reset();
  for (int64_t v : {5, 2, 9, 3}) {
    mn->Update(Value(v));
    mx->Update(Value(v));
  }
  EXPECT_EQ(mn->Final().AsInt(), 2);
  EXPECT_EQ(mx->Final().AsInt(), 9);
}

TEST(AggregateTest, ResetClearsState) {
  ASSERT_OK_AND_ASSIGN(auto agg, MakeAggregate("sum"));
  agg->Reset();
  agg->Update(Value(10));
  agg->Reset();
  agg->Update(Value(1));
  EXPECT_EQ(agg->Final().AsInt(), 1);
}

TEST(AggregateTest, UnknownNameIsError) {
  EXPECT_TRUE(MakeAggregate("median").status().IsInvalidArgument());
}

TEST(AggregateTest, CombinabilityTable) {
  // Per the paper: cnt→sum, max→max; avg has none.
  EXPECT_TRUE(IsCombinableAggregate("cnt"));
  EXPECT_TRUE(IsCombinableAggregate("sum"));
  EXPECT_TRUE(IsCombinableAggregate("min"));
  EXPECT_TRUE(IsCombinableAggregate("max"));
  EXPECT_FALSE(IsCombinableAggregate("avg"));
  EXPECT_EQ(*CombineFunctionFor("cnt"), "sum");
  EXPECT_EQ(*CombineFunctionFor("sum"), "sum");
  EXPECT_EQ(*CombineFunctionFor("min"), "min");
  EXPECT_EQ(*CombineFunctionFor("max"), "max");
  EXPECT_TRUE(CombineFunctionFor("avg").status().IsFailedPrecondition());
}

TEST(AggregateTest, ResultTypes) {
  EXPECT_EQ(AggResultType("cnt", ValueType::kDouble), ValueType::kInt64);
  EXPECT_EQ(AggResultType("avg", ValueType::kInt64), ValueType::kDouble);
  EXPECT_EQ(AggResultType("sum", ValueType::kInt64), ValueType::kInt64);
  EXPECT_EQ(AggResultType("max", ValueType::kDouble), ValueType::kDouble);
}

// ---------------------------------------------------------------------------
// Property sweep: the combine identity over every combinable aggregate,
// split point, and value distribution.
// ---------------------------------------------------------------------------

struct CombineCase {
  const char* agg;
  int n;        // values in the window
  int split;    // split point k
  uint64_t seed;
};

class CombinePropertyTest : public ::testing::TestWithParam<CombineCase> {};

TEST_P(CombinePropertyTest, CombineEqualsWhole) {
  const CombineCase& c = GetParam();
  Rng rng(c.seed);
  std::vector<Value> values;
  for (int i = 0; i < c.n; ++i) {
    values.push_back(Value(rng.UniformInt(-1000, 1000)));
  }
  ASSERT_OK_AND_ASSIGN(auto whole, MakeAggregate(c.agg));
  ASSERT_OK_AND_ASSIGN(auto left, MakeAggregate(c.agg));
  ASSERT_OK_AND_ASSIGN(auto right, MakeAggregate(c.agg));
  ASSERT_OK_AND_ASSIGN(std::string combine_name, CombineFunctionFor(c.agg));
  ASSERT_OK_AND_ASSIGN(auto combine, MakeAggregate(combine_name));
  whole->Reset();
  left->Reset();
  right->Reset();
  combine->Reset();
  for (int i = 0; i < c.n; ++i) {
    whole->Update(values[i]);
    (i < c.split ? left : right)->Update(values[i]);
  }
  if (left->count() > 0) combine->Update(left->Final());
  if (right->count() > 0) combine->Update(right->Final());
  EXPECT_EQ(combine->Final(), whole->Final())
      << c.agg << " n=" << c.n << " split=" << c.split;
}

std::vector<CombineCase> MakeCombineCases() {
  std::vector<CombineCase> cases;
  uint64_t seed = 1;
  for (const char* agg : {"cnt", "sum", "min", "max"}) {
    for (int n : {1, 2, 7, 64}) {
      for (int split : {0, 1, n / 2, n}) {
        cases.push_back(CombineCase{agg, n, split, seed++});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAggregates, CombinePropertyTest,
                         ::testing::ValuesIn(MakeCombineCases()));

}  // namespace
}  // namespace aurora
