// Filter, Map, and Union — the stateless boxes of §2.2 — plus base-class
// behaviour (selectivity accounting, lineage stamping, input validation).
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::CollectingEmitter;
using testing_util::GetInt;
using testing_util::PaperFigure2Stream;
using testing_util::RunUnaryOp;
using testing_util::SchemaAB;

TEST(FilterTest, PassesMatchingTuples) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> out,
      RunUnaryOp(FilterSpec(Predicate::Compare("B", CompareOp::kGe, Value(3))),
                 SchemaAB(), PaperFigure2Stream()));
  // Figure 2 tuples with B >= 3: #2 (B=3), #5 (B=6), #6 (B=5).
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(GetInt(out[0], "B"), 3);
  EXPECT_EQ(GetInt(out[1], "B"), 6);
  EXPECT_EQ(GetInt(out[2], "B"), 5);
}

TEST(FilterTest, TwoWayRoutesRejects) {
  auto spec =
      FilterSpec(Predicate::Compare("B", CompareOp::kLt, Value(3)), true);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  EXPECT_EQ(op->num_outputs(), 2);
  CollectingEmitter emitter;
  for (const Tuple& t : PaperFigure2Stream()) {
    ASSERT_OK(op->Process(0, t, SimTime(), &emitter));
  }
  // B < 3: tuples 1,3,4,7 on output 0; 2,5,6 on output 1.
  EXPECT_EQ(emitter.OnOutput(0).size(), 4u);
  EXPECT_EQ(emitter.OnOutput(1).size(), 3u);
  // Together they partition the input (split-router transparency).
  EXPECT_EQ(emitter.emissions().size(), 7u);
}

TEST(FilterTest, SelectivityIsMeasured) {
  auto spec = FilterSpec(Predicate::Compare("B", CompareOp::kGe, Value(3)));
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  for (const Tuple& t : PaperFigure2Stream()) {
    ASSERT_OK(op->Process(0, t, SimTime(), &emitter));
  }
  EXPECT_EQ(op->tuples_in(), 7u);
  EXPECT_EQ(op->tuples_out(), 3u);
  EXPECT_NEAR(op->selectivity(), 3.0 / 7.0, 1e-9);
}

TEST(FilterTest, LineageSeqPreserved) {
  auto spec = FilterSpec(Predicate::True());
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  Tuple t = MakeTuple(SchemaAB(), {Value(1), Value(2)});
  t.set_seq(77);
  ASSERT_OK(op->Process(0, t, SimTime(), &emitter));
  EXPECT_EQ(emitter.OnOutput(0)[0].seq(), 77u);
}

TEST(FilterTest, RequiresPredicate) {
  OperatorSpec spec;
  spec.kind = "filter";
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  EXPECT_TRUE(op->Init({SchemaAB()}).IsInvalidArgument());
}

TEST(MapTest, ProjectsAndComputes) {
  auto spec = MapSpec({{"A", Expr::FieldRef("A")},
                       {"Sum", Expr::Arith(ArithOp::kAdd, Expr::FieldRef("A"),
                                           Expr::FieldRef("B"))}});
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out,
                       RunUnaryOp(spec, SchemaAB(), PaperFigure2Stream()));
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[0].schema()->ToString(), "(A:int64, Sum:int64)");
  EXPECT_EQ(GetInt(out[0], "Sum"), 3);   // 1+2
  EXPECT_EQ(GetInt(out[6], "Sum"), 6);   // 4+2
}

TEST(MapTest, LineageStampedFromInput) {
  auto spec = MapSpec({{"A", Expr::FieldRef("A")}});
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  Tuple t = MakeTuple(SchemaAB(), {Value(1), Value(2)});
  t.set_seq(42);
  ASSERT_OK(op->Process(0, t, SimTime(), &emitter));
  // Map builds a fresh tuple; the base class stamps the input's seq.
  EXPECT_EQ(emitter.OnOutput(0)[0].seq(), 42u);
}

TEST(MapTest, PreservesTimestamp) {
  auto spec = MapSpec({{"B", Expr::FieldRef("B")}});
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  Tuple t = MakeTuple(SchemaAB(), {Value(1), Value(2)});
  t.set_timestamp(SimTime::Millis(5));
  ASSERT_OK(op->Process(0, t, SimTime::Millis(9), &emitter));
  EXPECT_EQ(emitter.OnOutput(0)[0].timestamp(), SimTime::Millis(5));
}

TEST(UnionTest, MergesArrivalOrder) {
  auto spec = UnionSpec(3);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB(), SchemaAB(), SchemaAB()}));
  CollectingEmitter emitter;
  for (int i = 0; i < 6; ++i) {
    Tuple t = MakeTuple(SchemaAB(), {Value(i), Value(0)});
    ASSERT_OK(op->Process(i % 3, t, SimTime(), &emitter));
  }
  std::vector<Tuple> out = emitter.OnOutput(0);
  ASSERT_EQ(out.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(GetInt(out[i], "A"), i);
}

TEST(UnionTest, RejectsMismatchedSchemas) {
  auto spec = UnionSpec(2);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  SchemaPtr other = Schema::Make({Field{"X", ValueType::kString}});
  EXPECT_TRUE(op->Init({SchemaAB(), other}).IsInvalidArgument());
}

TEST(OperatorBaseTest, ProcessBeforeInitRejected) {
  auto spec = UnionSpec(2);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB(), SchemaAB()}));
  CollectingEmitter emitter;
  Tuple t = MakeTuple(SchemaAB(), {Value(0), Value(0)});
  EXPECT_TRUE(op->Process(5, t, SimTime(), &emitter).IsInvalidArgument());
}

TEST(OperatorBaseTest, DoubleInitRejected) {
  auto spec = FilterSpec(Predicate::True());
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  EXPECT_TRUE(op->Init({SchemaAB()}).IsFailedPrecondition());
}

TEST(OperatorBaseTest, CostOverridableViaSpec) {
  auto spec = FilterSpec(Predicate::True());
  spec.SetParam("cost_us", Value(9.5));
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  EXPECT_DOUBLE_EQ(op->cost_micros_per_tuple(), 9.5);
}

TEST(OperatorFactoryTest, UnknownKindIsError) {
  OperatorSpec spec;
  spec.kind = "teleport";
  EXPECT_TRUE(CreateOperator(spec).status().IsInvalidArgument());
}

}  // namespace
}  // namespace aurora
