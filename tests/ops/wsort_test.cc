// WSort: time-bounded windowed sort (§2.2). Emission pacing, lossiness
// (tuples arriving behind the watermark are discarded), and the
// "large enough timeout" drain mode used by the Tumble-split merge.
#include <gtest/gtest.h>

#include "ops/wsort_op.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::CollectingEmitter;
using testing_util::GetInt;
using testing_util::SchemaAB;

Tuple T(int64_t a, int64_t b) {
  return MakeTuple(SchemaAB(), {Value(a), Value(b)});
}

TEST(WSortTest, DrainEmitsSortedByAttrs) {
  auto spec = WSortSpec({"A"}, /*timeout_us=*/0);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  for (int64_t a : {5, 1, 4, 2, 3}) {
    ASSERT_OK(op->Process(0, T(a, 0), SimTime(), &emitter));
  }
  EXPECT_TRUE(emitter.emissions().empty());  // infinite timeout: buffer only
  op->Drain(&emitter);
  std::vector<Tuple> out = emitter.OnOutput(0);
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(GetInt(out[i], "A"), i + 1);
}

TEST(WSortTest, MultiAttributeLexicographic) {
  auto spec = WSortSpec({"A", "B"}, 0);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  ASSERT_OK(op->Process(0, T(2, 1), SimTime(), &emitter));
  ASSERT_OK(op->Process(0, T(1, 9), SimTime(), &emitter));
  ASSERT_OK(op->Process(0, T(2, 0), SimTime(), &emitter));
  op->Drain(&emitter);
  std::vector<Tuple> out = emitter.OnOutput(0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(GetInt(out[0], "A"), 1);
  EXPECT_EQ(GetInt(out[1], "B"), 0);
  EXPECT_EQ(GetInt(out[2], "B"), 1);
}

TEST(WSortTest, TimeoutEmitsAtLeastOnePerPeriod) {
  auto spec = WSortSpec({"A"}, /*timeout_us=*/10'000);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  for (int64_t a : {3, 1, 2}) {
    ASSERT_OK(op->Process(0, T(a, 0), SimTime::Millis(0), &emitter));
  }
  op->OnTick(SimTime::Millis(5), &emitter);
  EXPECT_EQ(emitter.emissions().size(), 0u);  // before the timeout
  op->OnTick(SimTime::Millis(10), &emitter);
  ASSERT_EQ(emitter.emissions().size(), 1u);  // one per timeout period
  EXPECT_EQ(GetInt(emitter.OnOutput(0)[0], "A"), 1);
  op->OnTick(SimTime::Millis(20), &emitter);
  EXPECT_EQ(emitter.emissions().size(), 2u);
}

TEST(WSortTest, LossyDiscardBehindWatermark) {
  // "WSort is potentially lossy because it must discard any tuples that
  //  arrive after some tuple that follows it in sort order has already
  //  been emitted."
  auto spec = WSortSpec({"A"}, 10'000);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  auto* wsort = static_cast<WSortOp*>(op.get());
  CollectingEmitter emitter;
  ASSERT_OK(op->Process(0, T(5, 0), SimTime::Millis(0), &emitter));
  op->OnTick(SimTime::Millis(10), &emitter);  // emits A=5, watermark=5
  ASSERT_EQ(emitter.emissions().size(), 1u);
  ASSERT_OK(op->Process(0, T(3, 0), SimTime::Millis(11), &emitter));  // late!
  EXPECT_EQ(wsort->dropped(), 1u);
  ASSERT_OK(op->Process(0, T(7, 0), SimTime::Millis(11), &emitter));  // fine
  EXPECT_EQ(wsort->dropped(), 1u);
  op->Drain(&emitter);
  ASSERT_EQ(emitter.OnOutput(0).size(), 2u);  // 5 then 7; 3 was lost
  EXPECT_EQ(GetInt(emitter.OnOutput(0)[1], "A"), 7);
}

TEST(WSortTest, MaxBufferForcesEmission) {
  auto spec = WSortSpec({"A"}, 0, /*max_buffer=*/3);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  for (int64_t a : {4, 2, 3, 1}) {
    ASSERT_OK(op->Process(0, T(a, 0), SimTime(), &emitter));
  }
  // The 4th push (A=1) overflowed the 3-tuple buffer: the smallest
  // buffered tuple — A=1 itself, which had just been inserted — is forced
  // out immediately.
  ASSERT_EQ(emitter.emissions().size(), 1u);
  EXPECT_EQ(GetInt(emitter.OnOutput(0)[0], "A"), 1);
}

TEST(WSortTest, StatefulDependencyIsMinBufferedSeq) {
  auto spec = WSortSpec({"A"}, 0);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  for (int i = 0; i < 3; ++i) {
    Tuple t = T(10 - i, 0);
    t.set_seq(static_cast<SeqNo>(100 + i));
    ASSERT_OK(op->Process(0, t, SimTime(), &emitter));
  }
  EXPECT_EQ(op->Dependencies()[0], 100u);
  op->Drain(&emitter);
  // Buffer empty: falls back to last processed seq.
  EXPECT_EQ(op->Dependencies()[0], 102u);
}

TEST(WSortTest, RequiresSortAttribute) {
  OperatorSpec spec;
  spec.kind = "wsort";
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  EXPECT_TRUE(op->Init({SchemaAB()}).IsInvalidArgument());
}

}  // namespace
}  // namespace aurora
