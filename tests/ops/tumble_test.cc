// Reproduces the paper's worked Tumble examples:
//  - §2.2 / Figure 2: Tumble(avg(B), groupby A) over the 7-tuple sample
//    stream emits (A=1, Result=2.5) upon tuple #3 and (A=2, Result=3.0)
//    upon tuple #6, with a third window (A=4) still open.
//  - §5.1 / Figure 6: Tumble(cnt, groupby A) emits (1,2) and (2,3).
#include <gtest/gtest.h>

#include "ops/tumble_op.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::CollectingEmitter;
using testing_util::GetDouble;
using testing_util::GetInt;
using testing_util::PaperFigure2Stream;
using testing_util::RunUnaryOp;
using testing_util::SchemaAB;

TEST(TumbleTest, PaperFigure2AvgExample) {
  auto spec = TumbleSpec("avg", "B", {"A"});
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  std::vector<Tuple> stream = PaperFigure2Stream();

  // Tuples #1 and #2: nothing emitted yet.
  ASSERT_OK(op->Process(0, stream[0], stream[0].timestamp(), &emitter));
  ASSERT_OK(op->Process(0, stream[1], stream[1].timestamp(), &emitter));
  EXPECT_EQ(emitter.emissions().size(), 0u);

  // Tuple #3 (first with A != 1) closes the A=1 window: (A=1, Result=2.5).
  ASSERT_OK(op->Process(0, stream[2], stream[2].timestamp(), &emitter));
  ASSERT_EQ(emitter.emissions().size(), 1u);
  EXPECT_EQ(GetInt(emitter.OnOutput(0)[0], "A"), 1);
  EXPECT_DOUBLE_EQ(GetDouble(emitter.OnOutput(0)[0], "Result"), 2.5);

  // Tuples #4, #5 extend the A=2 window.
  ASSERT_OK(op->Process(0, stream[3], stream[3].timestamp(), &emitter));
  ASSERT_OK(op->Process(0, stream[4], stream[4].timestamp(), &emitter));
  EXPECT_EQ(emitter.emissions().size(), 1u);

  // Tuple #6 (A=4) closes the A=2 window: (A=2, Result=3.0).
  ASSERT_OK(op->Process(0, stream[5], stream[5].timestamp(), &emitter));
  ASSERT_EQ(emitter.emissions().size(), 2u);
  EXPECT_EQ(GetInt(emitter.OnOutput(0)[1], "A"), 2);
  EXPECT_DOUBLE_EQ(GetDouble(emitter.OnOutput(0)[1], "Result"), 3.0);

  // Tuple #7 keeps the A=4 window open — "a third tuple with A = 4 would
  // not get emitted until a later tuple arrives with A not equal to 4".
  ASSERT_OK(op->Process(0, stream[6], stream[6].timestamp(), &emitter));
  EXPECT_EQ(emitter.emissions().size(), 2u);
}

TEST(TumbleTest, PaperFigure6CntExample) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> out,
      RunUnaryOp(TumbleSpec("cnt", "B", {"A"}), SchemaAB(),
                 PaperFigure2Stream()));
  // Without splitting: (A=1, result=2) and (A=2, result=3); A=4 still open.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(GetInt(out[0], "A"), 1);
  EXPECT_EQ(GetInt(out[0], "Result"), 2);
  EXPECT_EQ(GetInt(out[1], "A"), 2);
  EXPECT_EQ(GetInt(out[1], "Result"), 3);
}

TEST(TumbleTest, DrainFlushesOpenWindow) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> out,
      RunUnaryOp(TumbleSpec("cnt", "B", {"A"}), SchemaAB(),
                 PaperFigure2Stream(), /*drain=*/true));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(GetInt(out[2], "A"), 4);
  EXPECT_EQ(GetInt(out[2], "Result"), 2);
}

TEST(TumbleTest, InterleavedGroupsCloseOnEveryChange) {
  // Run-based windows: A=1,A=2,A=1 produces three windows.
  SchemaPtr schema = SchemaAB();
  std::vector<Tuple> tuples = {
      MakeTuple(schema, {Value(1), Value(10)}),
      MakeTuple(schema, {Value(2), Value(20)}),
      MakeTuple(schema, {Value(1), Value(30)}),
  };
  ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> out,
      RunUnaryOp(TumbleSpec("sum", "B", {"A"}), schema, tuples,
                 /*drain=*/true));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(GetInt(out[0], "A"), 1);
  EXPECT_EQ(GetInt(out[0], "Result"), 10);
  EXPECT_EQ(GetInt(out[1], "A"), 2);
  EXPECT_EQ(GetInt(out[1], "Result"), 20);
  EXPECT_EQ(GetInt(out[2], "A"), 1);
  EXPECT_EQ(GetInt(out[2], "Result"), 30);
}

TEST(TumbleTest, EveryNPolicyCountWindowsPerGroup) {
  OperatorSpec spec = TumbleSpec("sum", "B", {"A"});
  spec.SetParam("emit", Value(std::string("every_n")));
  spec.SetParam("n", Value(static_cast<int64_t>(2)));
  SchemaPtr schema = SchemaAB();
  // Interleaved groups; each group's window closes after 2 tuples.
  std::vector<Tuple> tuples = {
      MakeTuple(schema, {Value(1), Value(1)}),
      MakeTuple(schema, {Value(2), Value(10)}),
      MakeTuple(schema, {Value(1), Value(2)}),   // closes A=1: 3
      MakeTuple(schema, {Value(2), Value(20)}),  // closes A=2: 30
      MakeTuple(schema, {Value(1), Value(4)}),   // new A=1 window stays open
  };
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out,
                       RunUnaryOp(spec, schema, tuples));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(GetInt(out[0], "A"), 1);
  EXPECT_EQ(GetInt(out[0], "Result"), 3);
  EXPECT_EQ(GetInt(out[1], "A"), 2);
  EXPECT_EQ(GetInt(out[1], "Result"), 30);
}

TEST(TumbleTest, NoGroupbySingleRun) {
  OperatorSpec spec = TumbleSpec("cnt", "B", {});
  ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> out,
      RunUnaryOp(spec, SchemaAB(), PaperFigure2Stream(), /*drain=*/true));
  // One global run over all seven tuples.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(GetInt(out[0], "Result"), 7);
}

TEST(TumbleTest, StatefulDependencyTracksOpenWindow) {
  auto spec = TumbleSpec("cnt", "B", {"A"});
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  std::vector<Tuple> stream = PaperFigure2Stream();
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(op->Process(0, stream[i], stream[i].timestamp(), &emitter));
  }
  // Open window holds tuples #3..#5 (A=2) → earliest dependency is seq 3.
  std::vector<SeqNo> deps = op->Dependencies();
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0], 3u);
}

TEST(TumbleTest, RejectsUnknownAggregate) {
  auto spec = TumbleSpec("median", "B", {"A"});
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  Status st = op->Init({SchemaAB()});
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(TumbleTest, RejectsMissingField) {
  auto spec = TumbleSpec("cnt", "Z", {"A"});
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  Status st = op->Init({SchemaAB()});
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();
}

}  // namespace
}  // namespace aurora
