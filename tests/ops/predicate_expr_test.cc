// Declarative predicates and expressions: evaluation, algebra, and the wire
// round-trips that remote definition (§4.4) depends on.
#include <gtest/gtest.h>

#include "ops/expr.h"
#include "ops/predicate.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

Tuple T(int64_t a, int64_t b) {
  return MakeTuple(SchemaAB(), {Value(a), Value(b)});
}

TEST(PredicateTest, CompareOps) {
  EXPECT_TRUE(Predicate::Compare("A", CompareOp::kEq, Value(1)).Eval(T(1, 0)));
  EXPECT_FALSE(Predicate::Compare("A", CompareOp::kEq, Value(1)).Eval(T(2, 0)));
  EXPECT_TRUE(Predicate::Compare("B", CompareOp::kLt, Value(3)).Eval(T(0, 2)));
  EXPECT_TRUE(Predicate::Compare("B", CompareOp::kLe, Value(2)).Eval(T(0, 2)));
  EXPECT_TRUE(Predicate::Compare("B", CompareOp::kGt, Value(1)).Eval(T(0, 2)));
  EXPECT_TRUE(Predicate::Compare("B", CompareOp::kGe, Value(2)).Eval(T(0, 2)));
  EXPECT_TRUE(Predicate::Compare("B", CompareOp::kNe, Value(5)).Eval(T(0, 2)));
}

TEST(PredicateTest, BooleanCombinators) {
  Predicate p = Predicate::And(
      Predicate::Compare("A", CompareOp::kGe, Value(1)),
      Predicate::Compare("B", CompareOp::kLt, Value(5)));
  EXPECT_TRUE(p.Eval(T(1, 4)));
  EXPECT_FALSE(p.Eval(T(0, 4)));
  EXPECT_FALSE(p.Eval(T(1, 5)));

  Predicate q = Predicate::Or(
      Predicate::Compare("A", CompareOp::kEq, Value(9)),
      Predicate::Compare("B", CompareOp::kEq, Value(9)));
  EXPECT_TRUE(q.Eval(T(9, 0)));
  EXPECT_TRUE(q.Eval(T(0, 9)));
  EXPECT_FALSE(q.Eval(T(0, 0)));

  EXPECT_FALSE(Predicate::Not(Predicate::True()).Eval(T(0, 0)));
}

TEST(PredicateTest, NegationComplementsExactly) {
  // The splitter routes with p and relies on the router's second output
  // being exactly the complement.
  Predicate p = Predicate::Compare("B", CompareOp::kLt, Value(3));
  Predicate not_p = p.Negation();
  for (int b = 0; b < 10; ++b) {
    EXPECT_NE(p.Eval(T(0, b)), not_p.Eval(T(0, b)));
  }
}

TEST(PredicateTest, HashPartitionIsDisjointAndComplete) {
  // §5.2 "half of the available streams": the hash family must partition.
  Predicate p0 = Predicate::HashPartition("A", 2, 0);
  Predicate p1 = Predicate::HashPartition("A", 2, 1);
  int zeros = 0;
  for (int a = 0; a < 100; ++a) {
    bool in0 = p0.Eval(T(a, 0));
    bool in1 = p1.Eval(T(a, 0));
    EXPECT_NE(in0, in1) << "a=" << a;
    if (in0) ++zeros;
  }
  // Roughly balanced.
  EXPECT_GT(zeros, 30);
  EXPECT_LT(zeros, 70);
}

TEST(PredicateTest, WireRoundTrip) {
  Predicate p = Predicate::Or(
      Predicate::And(Predicate::Compare("A", CompareOp::kGe, Value(1)),
                     Predicate::Not(Predicate::Compare("B", CompareOp::kEq,
                                                       Value("x")))),
      Predicate::HashPartition("A", 4, 2));
  Encoder enc;
  p.Encode(&enc);
  Decoder dec(enc.buffer());
  ASSERT_OK_AND_ASSIGN(Predicate got, Predicate::Decode(&dec));
  EXPECT_EQ(got.ToString(), p.ToString());
  for (int a = 0; a < 20; ++a) {
    EXPECT_EQ(got.Eval(T(a, a)), p.Eval(T(a, a)));
  }
}

TEST(PredicateTest, DecodeRejectsZeroModulus) {
  Encoder enc;
  enc.PutU8(5);  // kHash
  enc.PutString("A");
  enc.PutU32(0);
  enc.PutU32(0);
  Decoder dec(enc.buffer());
  EXPECT_TRUE(Predicate::Decode(&dec).status().IsInvalidArgument());
}

TEST(ExprTest, FieldAndConstant) {
  ASSERT_OK_AND_ASSIGN(Value v, Expr::FieldRef("B").Eval(T(1, 7)));
  EXPECT_EQ(v.AsInt(), 7);
  ASSERT_OK_AND_ASSIGN(Value c, Expr::Constant(Value(3.5)).Eval(T(0, 0)));
  EXPECT_DOUBLE_EQ(c.AsDouble(), 3.5);
}

TEST(ExprTest, IntegerArithmeticStaysIntegral) {
  Expr e = Expr::Arith(ArithOp::kAdd, Expr::FieldRef("A"),
                       Expr::Arith(ArithOp::kMul, Expr::FieldRef("B"),
                                   Expr::Constant(Value(10))));
  ASSERT_OK_AND_ASSIGN(Value v, e.Eval(T(3, 4)));
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt(), 43);
  ASSERT_OK_AND_ASSIGN(ValueType t, e.ResultType(*SchemaAB()));
  EXPECT_EQ(t, ValueType::kInt64);
}

TEST(ExprTest, DivisionAlwaysDouble) {
  Expr e = Expr::Arith(ArithOp::kDiv, Expr::FieldRef("A"), Expr::FieldRef("B"));
  ASSERT_OK_AND_ASSIGN(Value v, e.Eval(T(7, 2)));
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.5);
  EXPECT_TRUE(e.Eval(T(7, 0)).status().IsInvalidArgument());  // div by zero
}

TEST(ExprTest, MissingFieldError) {
  EXPECT_TRUE(Expr::FieldRef("Z").Eval(T(0, 0)).status().IsNotFound());
}

TEST(ExprTest, WireRoundTrip) {
  Expr e = Expr::Arith(ArithOp::kSub, Expr::FieldRef("A"),
                       Expr::Constant(Value(1.5)));
  Encoder enc;
  e.Encode(&enc);
  Decoder dec(enc.buffer());
  ASSERT_OK_AND_ASSIGN(Expr got, Expr::Decode(&dec));
  ASSERT_OK_AND_ASSIGN(Value v, got.Eval(T(4, 0)));
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
}

TEST(OpSpecTest, WireRoundTripCarriesEverything) {
  OperatorSpec spec = TumbleSpec("sum", "B", {"A"}, "Total");
  spec.SetParam("cost_us", Value(7.5));
  Encoder enc;
  spec.Encode(&enc);
  Decoder dec(enc.buffer());
  ASSERT_OK_AND_ASSIGN(OperatorSpec got, OperatorSpec::Decode(&dec));
  EXPECT_EQ(got, spec);
  EXPECT_EQ(got.GetString("agg", ""), "sum");
  EXPECT_EQ(got.attrs, std::vector<std::string>{"A"});
  EXPECT_DOUBLE_EQ(got.GetDouble("cost_us", 0), 7.5);
}

TEST(OpSpecTest, FilterSpecRoundTripKeepsPredicate) {
  OperatorSpec spec =
      FilterSpec(Predicate::Compare("B", CompareOp::kLt, Value(3)), true);
  Encoder enc;
  spec.Encode(&enc);
  Decoder dec(enc.buffer());
  ASSERT_OK_AND_ASSIGN(OperatorSpec got, OperatorSpec::Decode(&dec));
  ASSERT_TRUE(got.predicate.has_value());
  EXPECT_TRUE(got.predicate->Eval(T(0, 2)));
  EXPECT_FALSE(got.predicate->Eval(T(0, 3)));
  EXPECT_TRUE(got.GetBool("two_way", false));
}

}  // namespace
}  // namespace aurora
