// Randomized property sweeps over operator invariants, parameterized by
// seed and workload shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "check/shrink_list.h"
#include "common/rng.h"
#include "ops/aggregate.h"
#include "ops/wsort_op.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::CollectingEmitter;
using testing_util::GetInt;
using testing_util::MakeTestRng;
using testing_util::RunUnaryOp;
using testing_util::SchemaAB;

struct SeedCase {
  uint64_t seed;
  int n;
};

class WSortPropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: whatever arrives, the emitted sequence (including drain) is
// non-decreasing in the sort key, and emitted + dropped == received.
TEST_P(WSortPropertyTest, OutputSortedAndAccounted) {
  const auto& c = GetParam();
  Rng rng = MakeTestRng(c.seed);
  auto spec = WSortSpec({"A"}, /*timeout_us=*/5'000);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  auto* wsort = static_cast<WSortOp*>(op.get());
  CollectingEmitter emitter;
  SimTime now;
  for (int i = 0; i < c.n; ++i) {
    Tuple t = MakeTuple(SchemaAB(),
                        {Value(rng.UniformInt(0, 50)), Value(i)});
    now += SimDuration::Millis(static_cast<int64_t>(rng.Uniform(4)));
    t.set_timestamp(now);
    ASSERT_OK(op->Process(0, t, now, &emitter));
    op->OnTick(now, &emitter);
  }
  op->Drain(&emitter);
  std::vector<Tuple> out = emitter.OnOutput(0);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(GetInt(out[i - 1], "A"), GetInt(out[i], "A")) << "at " << i;
  }
  EXPECT_EQ(out.size() + wsort->dropped(), static_cast<size_t>(c.n));
}

INSTANTIATE_TEST_SUITE_P(Sweep, WSortPropertyTest,
                         ::testing::Values(SeedCase{1, 50}, SeedCase{2, 200},
                                           SeedCase{3, 500}, SeedCase{4, 31},
                                           SeedCase{5, 1000}));

class TumblePropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: with agg=cnt, the sum of all window counts (after drain)
// equals the number of input tuples, and each window's count equals its
// run length.
TEST_P(TumblePropertyTest, CountsPartitionTheInput) {
  const auto& c = GetParam();
  Rng rng = MakeTestRng(c.seed);
  SchemaPtr schema = SchemaAB();
  std::vector<Tuple> stream;
  int64_t group = 0;
  std::vector<int64_t> run_lengths;
  while (static_cast<int>(stream.size()) < c.n) {
    int64_t run = rng.UniformInt(1, 6);
    run = std::min<int64_t>(run, c.n - static_cast<int64_t>(stream.size()));
    run_lengths.push_back(run);
    for (int64_t j = 0; j < run; ++j) {
      stream.push_back(MakeTuple(schema, {Value(group), Value(j)}));
    }
    ++group;
  }
  ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> out,
      RunUnaryOp(TumbleSpec("cnt", "B", {"A"}), schema, stream, true));
  ASSERT_EQ(out.size(), run_lengths.size());
  int64_t total = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(GetInt(out[i], "Result"), run_lengths[i]) << "window " << i;
    total += GetInt(out[i], "Result");
  }
  EXPECT_EQ(total, c.n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TumblePropertyTest,
                         ::testing::Values(SeedCase{10, 40}, SeedCase{11, 123},
                                           SeedCase{12, 400},
                                           SeedCase{13, 999}));

class JoinPropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: the join result is independent of which side a pair's tuples
// arrive on first (symmetric hash join).
TEST_P(JoinPropertyTest, SymmetricInArrivalOrder) {
  const auto& c = GetParam();
  SchemaPtr left = SchemaAB();
  SchemaPtr right = Schema::Make(
      {Field{"K", ValueType::kInt64}, Field{"V", ValueType::kInt64}});
  // A batch of left/right tuples with random keys, all within the window.
  Rng rng = MakeTestRng(c.seed);
  std::vector<Tuple> lefts, rights;
  for (int i = 0; i < c.n; ++i) {
    Tuple l = MakeTuple(left, {Value(rng.UniformInt(0, 9)), Value(i)});
    l.set_timestamp(SimTime::Millis(1));
    lefts.push_back(std::move(l));
    Tuple r = MakeTuple(right, {Value(rng.UniformInt(0, 9)), Value(i)});
    r.set_timestamp(SimTime::Millis(1));
    rights.push_back(std::move(r));
  }
  auto run = [&](bool left_first) {
    auto op = std::move(CreateOperator(JoinSpec("A", "K", 1'000'000))).ValueUnsafe();
    AURORA_CHECK(op->Init({left, right}).ok());
    CollectingEmitter emitter;
    if (left_first) {
      for (const auto& l : lefts) {
        (void)op->Process(0, l, SimTime::Millis(1), &emitter);
      }
      for (const auto& r : rights) {
        (void)op->Process(1, r, SimTime::Millis(1), &emitter);
      }
    } else {
      for (const auto& r : rights) {
        (void)op->Process(1, r, SimTime::Millis(1), &emitter);
      }
      for (const auto& l : lefts) {
        (void)op->Process(0, l, SimTime::Millis(1), &emitter);
      }
    }
    // Canonicalize: multiset of (left B, right V) pairs.
    std::multiset<std::pair<int64_t, int64_t>> pairs;
    for (const auto& t : emitter.OnOutput(0)) {
      pairs.insert({t.Get("B").AsInt(), t.Get("V").AsInt()});
    }
    return pairs;
  };
  EXPECT_EQ(run(true), run(false));
}

INSTANTIATE_TEST_SUITE_P(Sweep, JoinPropertyTest,
                         ::testing::Values(SeedCase{20, 20}, SeedCase{21, 60},
                                           SeedCase{22, 150}));

// ---- Brute-force reference checks (seeded, shrinking on failure) ---------
//
// Each suite feeds seeded random input to an operator and compares against
// an independent from-scratch reference model. On mismatch the failing
// input list is minimized with ShrinkList (the simcheck minimizer) so the
// assertion message carries a small reproducer instead of hundreds of rows.

std::string DescribeRows(const std::vector<std::pair<int64_t, int64_t>>& rows) {
  std::ostringstream os;
  for (const auto& [a, b] : rows) os << "(" << a << "," << b << ") ";
  return os.str();
}

class AggregatePropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: every registered aggregate matches a direct fold over the
// same values.
TEST_P(AggregatePropertyTest, MatchesDirectFold) {
  const auto& c = GetParam();
  for (const std::string name : {"cnt", "sum", "avg", "min", "max"}) {
    Rng rng = MakeTestRng(c.seed);
    ASSERT_OK_AND_ASSIGN(auto agg, MakeAggregate(name));
    agg->Reset();
    std::vector<int64_t> values;
    for (int i = 0; i < c.n; ++i) {
      int64_t v = rng.UniformInt(-500, 500);
      values.push_back(v);
      agg->Update(Value(v));
    }
    int64_t sum = 0, mn = values[0], mx = values[0];
    for (int64_t v : values) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    EXPECT_EQ(agg->count(), static_cast<uint64_t>(c.n)) << name;
    Value got = agg->Final();
    if (name == "cnt") {
      EXPECT_EQ(got.AsInt(), c.n);
    } else if (name == "sum") {
      EXPECT_EQ(got.AsInt(), sum) << name;
    } else if (name == "avg") {
      EXPECT_DOUBLE_EQ(got.AsNumeric(),
                       static_cast<double>(sum) / c.n);
    } else if (name == "min") {
      EXPECT_EQ(got.AsInt(), mn);
    } else {
      EXPECT_EQ(got.AsInt(), mx);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AggregatePropertyTest,
                         ::testing::Values(SeedCase{30, 1}, SeedCase{31, 17},
                                           SeedCase{32, 256},
                                           SeedCase{33, 777}));

using Row = std::pair<int64_t, int64_t>;  // (A, B)

std::vector<Tuple> RowsToTuples(const std::vector<Row>& rows) {
  SchemaPtr schema = SchemaAB();
  std::vector<Tuple> tuples;
  for (const auto& [a, b] : rows) {
    tuples.push_back(MakeTuple(schema, {Value(a), Value(b)}));
  }
  return tuples;
}

class TumbleEveryNPropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: tumble in every_n mode equals the reference "per-key sums of
// consecutive chunks of n values" (drain flushing the final partials).
TEST_P(TumbleEveryNPropertyTest, MatchesChunkedReference) {
  const auto& c = GetParam();
  Rng rng = MakeTestRng(c.seed);
  const int64_t n = rng.UniformInt(2, 5);
  std::vector<Row> rows;
  for (int i = 0; i < c.n; ++i) {
    rows.push_back({rng.UniformInt(0, 5), rng.UniformInt(0, 99)});
  }
  auto spec = TumbleSpec("sum", "B", {"A"});
  spec.SetParam("emit", Value("every_n"));
  spec.SetParam("n", Value(n));

  // Mismatch detector, reused by the shrinker: per-key emitted sums vs
  // per-key chunked reference sums.
  auto mismatch = [&](const std::vector<Row>& input) {
    auto out = RunUnaryOp(spec, SchemaAB(), RowsToTuples(input), true);
    if (!out.ok()) return true;
    std::map<int64_t, std::vector<int64_t>> got, want;
    for (const Tuple& t : *out) {
      got[GetInt(t, "A")].push_back(GetInt(t, "Result"));
    }
    std::map<int64_t, std::vector<int64_t>> per_key;
    for (const auto& [a, b] : input) per_key[a].push_back(b);
    for (const auto& [a, values] : per_key) {
      for (size_t at = 0; at < values.size(); at += static_cast<size_t>(n)) {
        size_t end = std::min(values.size(), at + static_cast<size_t>(n));
        int64_t sum = 0;
        for (size_t j = at; j < end; ++j) sum += values[j];
        want[a].push_back(sum);
      }
    }
    return got != want;
  };

  if (mismatch(rows)) {
    std::vector<Row> minimal = ShrinkList<Row>(rows, mismatch);
    FAIL() << "tumble every_n (n=" << n
           << ") diverges from chunked reference; minimal failing input: "
           << DescribeRows(minimal);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TumbleEveryNPropertyTest,
                         ::testing::Values(SeedCase{40, 30}, SeedCase{41, 100},
                                           SeedCase{42, 333},
                                           SeedCase{43, 998}));

struct WindowCase {
  uint64_t seed;
  int n;
  int64_t window;
  int64_t advance;
};

class WindowAggPropertyTest : public ::testing::TestWithParam<WindowCase> {};

// Invariant: xsection(sum) with groupby equals the reference "sum of the
// last `window` values at every position p >= window-1 where
// (p - window + 1) % advance == 0", independently per key.
TEST_P(WindowAggPropertyTest, XSectionMatchesSlidingReference) {
  const auto& c = GetParam();
  Rng rng = MakeTestRng(c.seed);
  std::vector<Row> rows;
  for (int i = 0; i < c.n; ++i) {
    rows.push_back({rng.UniformInt(0, 3), rng.UniformInt(0, 50)});
  }
  auto spec = XSectionSpec("sum", "B", c.window, c.advance, {"A"});

  auto mismatch = [&](const std::vector<Row>& input) {
    auto out = RunUnaryOp(spec, SchemaAB(), RowsToTuples(input));
    if (!out.ok()) return true;
    std::map<int64_t, std::vector<int64_t>> got, want;
    for (const Tuple& t : *out) {
      got[GetInt(t, "A")].push_back(GetInt(t, "Result"));
    }
    std::map<int64_t, std::vector<int64_t>> per_key;
    for (const auto& [a, b] : input) per_key[a].push_back(b);
    for (const auto& [a, values] : per_key) {
      for (size_t p = static_cast<size_t>(c.window) - 1; p < values.size();
           ++p) {
        size_t lo = p - static_cast<size_t>(c.window) + 1;
        if (lo % static_cast<size_t>(c.advance) != 0) continue;
        int64_t sum = 0;
        for (size_t j = lo; j <= p; ++j) sum += values[j];
        want[a].push_back(sum);
      }
    }
    return got != want;
  };

  if (mismatch(rows)) {
    std::vector<Row> minimal = ShrinkList<Row>(rows, mismatch);
    FAIL() << "xsection(window=" << c.window << ", advance=" << c.advance
           << ") diverges from sliding reference; minimal failing input: "
           << DescribeRows(minimal);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowAggPropertyTest,
    ::testing::Values(WindowCase{50, 60, 3, 1}, WindowCase{51, 120, 4, 4},
                      WindowCase{52, 250, 5, 2}, WindowCase{53, 500, 2, 1},
                      WindowCase{54, 77, 6, 3}));

class WSortBufferPropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: wsort with a buffer cap (timeout 0, so no timer involvement)
// equals an independent sorted-buffer + watermark model: when the buffer
// exceeds its cap the smallest element is emitted and becomes the
// watermark; arrivals below the watermark are dropped; drain emits the
// remainder in ascending order.
TEST_P(WSortBufferPropertyTest, MatchesSortedBufferReference) {
  const auto& c = GetParam();
  Rng rng = MakeTestRng(c.seed);
  const int64_t max_buffer = rng.UniformInt(3, 12);
  // Unique sort keys in random order: ties between equal keys would make
  // the reference's pick ambiguous without modeling the op's internals.
  std::vector<Row> rows;
  for (int i = 0; i < c.n; ++i) {
    rows.push_back({rng.UniformInt(0, 1000) * 1000 + i, i});
  }
  auto spec = WSortSpec({"A"}, /*timeout_us=*/0, max_buffer);

  auto mismatch = [&](const std::vector<Row>& input) {
    auto out = RunUnaryOp(spec, SchemaAB(), RowsToTuples(input), true);
    if (!out.ok()) return true;
    std::vector<int64_t> got;
    for (const Tuple& t : *out) got.push_back(GetInt(t, "A"));
    std::vector<int64_t> want;
    std::vector<int64_t> buffer;
    int64_t watermark = -1;
    for (const auto& [a, b] : input) {
      if (a < watermark) continue;  // late: reference model drops it
      buffer.insert(std::upper_bound(buffer.begin(), buffer.end(), a), a);
      while (static_cast<int64_t>(buffer.size()) > max_buffer) {
        watermark = buffer.front();
        want.push_back(buffer.front());
        buffer.erase(buffer.begin());
      }
    }
    want.insert(want.end(), buffer.begin(), buffer.end());
    return got != want;
  };

  if (mismatch(rows)) {
    std::vector<Row> minimal = ShrinkList<Row>(rows, mismatch);
    FAIL() << "wsort(max_buffer=" << max_buffer
           << ") diverges from sorted-buffer reference; minimal failing "
              "input: "
           << DescribeRows(minimal);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WSortBufferPropertyTest,
                         ::testing::Values(SeedCase{60, 25}, SeedCase{61, 80},
                                           SeedCase{62, 300},
                                           SeedCase{63, 1000}));

// The minimizer itself: a failing predicate defined by containing a magic
// value must shrink to exactly that one element.
TEST(ShrinkListTest, MinimizesToSingleCulprit) {
  std::vector<int> items;
  for (int i = 0; i < 100; ++i) items.push_back(i);
  auto contains_culprit = [](const std::vector<int>& xs) {
    return std::find(xs.begin(), xs.end(), 73) != xs.end();
  };
  std::vector<int> minimal = ShrinkList<int>(items, contains_culprit);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], 73);
}

TEST(ShrinkListTest, KeepsInterdependentPair) {
  // When failure needs two elements jointly, both must survive.
  std::vector<int> items = {5, 1, 9, 2, 7, 3, 8, 4};
  auto needs_both = [](const std::vector<int>& xs) {
    bool a = std::find(xs.begin(), xs.end(), 9) != xs.end();
    bool b = std::find(xs.begin(), xs.end(), 4) != xs.end();
    return a && b;
  };
  std::vector<int> minimal = ShrinkList<int>(items, needs_both);
  EXPECT_EQ(minimal, (std::vector<int>{9, 4}));
}

}  // namespace
}  // namespace aurora
