// Randomized property sweeps over operator invariants, parameterized by
// seed and workload shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "check/shrink_list.h"
#include "common/rng.h"
#include "ops/aggregate.h"
#include "ops/wsort_op.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::CollectingEmitter;
using testing_util::GetInt;
using testing_util::MakeTestRng;
using testing_util::RunUnaryOp;
using testing_util::SchemaAB;

struct SeedCase {
  uint64_t seed;
  int n;
};

class WSortPropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: whatever arrives, the emitted sequence (including drain) is
// non-decreasing in the sort key, and emitted + dropped == received.
TEST_P(WSortPropertyTest, OutputSortedAndAccounted) {
  const auto& c = GetParam();
  Rng rng = MakeTestRng(c.seed);
  auto spec = WSortSpec({"A"}, /*timeout_us=*/5'000);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  auto* wsort = static_cast<WSortOp*>(op.get());
  CollectingEmitter emitter;
  SimTime now;
  for (int i = 0; i < c.n; ++i) {
    Tuple t = MakeTuple(SchemaAB(),
                        {Value(rng.UniformInt(0, 50)), Value(i)});
    now += SimDuration::Millis(static_cast<int64_t>(rng.Uniform(4)));
    t.set_timestamp(now);
    ASSERT_OK(op->Process(0, t, now, &emitter));
    op->OnTick(now, &emitter);
  }
  op->Drain(&emitter);
  std::vector<Tuple> out = emitter.OnOutput(0);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(GetInt(out[i - 1], "A"), GetInt(out[i], "A")) << "at " << i;
  }
  EXPECT_EQ(out.size() + wsort->dropped(), static_cast<size_t>(c.n));
}

INSTANTIATE_TEST_SUITE_P(Sweep, WSortPropertyTest,
                         ::testing::Values(SeedCase{1, 50}, SeedCase{2, 200},
                                           SeedCase{3, 500}, SeedCase{4, 31},
                                           SeedCase{5, 1000}));

class TumblePropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: with agg=cnt, the sum of all window counts (after drain)
// equals the number of input tuples, and each window's count equals its
// run length.
TEST_P(TumblePropertyTest, CountsPartitionTheInput) {
  const auto& c = GetParam();
  Rng rng = MakeTestRng(c.seed);
  SchemaPtr schema = SchemaAB();
  std::vector<Tuple> stream;
  int64_t group = 0;
  std::vector<int64_t> run_lengths;
  while (static_cast<int>(stream.size()) < c.n) {
    int64_t run = rng.UniformInt(1, 6);
    run = std::min<int64_t>(run, c.n - static_cast<int64_t>(stream.size()));
    run_lengths.push_back(run);
    for (int64_t j = 0; j < run; ++j) {
      stream.push_back(MakeTuple(schema, {Value(group), Value(j)}));
    }
    ++group;
  }
  ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> out,
      RunUnaryOp(TumbleSpec("cnt", "B", {"A"}), schema, stream, true));
  ASSERT_EQ(out.size(), run_lengths.size());
  int64_t total = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(GetInt(out[i], "Result"), run_lengths[i]) << "window " << i;
    total += GetInt(out[i], "Result");
  }
  EXPECT_EQ(total, c.n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TumblePropertyTest,
                         ::testing::Values(SeedCase{10, 40}, SeedCase{11, 123},
                                           SeedCase{12, 400},
                                           SeedCase{13, 999}));

class JoinPropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: the join result is independent of which side a pair's tuples
// arrive on first (symmetric hash join).
TEST_P(JoinPropertyTest, SymmetricInArrivalOrder) {
  const auto& c = GetParam();
  SchemaPtr left = SchemaAB();
  SchemaPtr right = Schema::Make(
      {Field{"K", ValueType::kInt64}, Field{"V", ValueType::kInt64}});
  // A batch of left/right tuples with random keys, all within the window.
  Rng rng = MakeTestRng(c.seed);
  std::vector<Tuple> lefts, rights;
  for (int i = 0; i < c.n; ++i) {
    Tuple l = MakeTuple(left, {Value(rng.UniformInt(0, 9)), Value(i)});
    l.set_timestamp(SimTime::Millis(1));
    lefts.push_back(std::move(l));
    Tuple r = MakeTuple(right, {Value(rng.UniformInt(0, 9)), Value(i)});
    r.set_timestamp(SimTime::Millis(1));
    rights.push_back(std::move(r));
  }
  auto run = [&](bool left_first) {
    auto op = std::move(CreateOperator(JoinSpec("A", "K", 1'000'000))).ValueUnsafe();
    AURORA_CHECK(op->Init({left, right}).ok());
    CollectingEmitter emitter;
    if (left_first) {
      for (const auto& l : lefts) {
        (void)op->Process(0, l, SimTime::Millis(1), &emitter);
      }
      for (const auto& r : rights) {
        (void)op->Process(1, r, SimTime::Millis(1), &emitter);
      }
    } else {
      for (const auto& r : rights) {
        (void)op->Process(1, r, SimTime::Millis(1), &emitter);
      }
      for (const auto& l : lefts) {
        (void)op->Process(0, l, SimTime::Millis(1), &emitter);
      }
    }
    // Canonicalize: multiset of (left B, right V) pairs.
    std::multiset<std::pair<int64_t, int64_t>> pairs;
    for (const auto& t : emitter.OnOutput(0)) {
      pairs.insert({t.Get("B").AsInt(), t.Get("V").AsInt()});
    }
    return pairs;
  };
  EXPECT_EQ(run(true), run(false));
}

INSTANTIATE_TEST_SUITE_P(Sweep, JoinPropertyTest,
                         ::testing::Values(SeedCase{20, 20}, SeedCase{21, 60},
                                           SeedCase{22, 150}));

// ---- Brute-force reference checks (seeded, shrinking on failure) ---------
//
// Each suite feeds seeded random input to an operator and compares against
// an independent from-scratch reference model. On mismatch the failing
// input list is minimized with ShrinkList (the simcheck minimizer) so the
// assertion message carries a small reproducer instead of hundreds of rows.

std::string DescribeRows(const std::vector<std::pair<int64_t, int64_t>>& rows) {
  std::ostringstream os;
  for (const auto& [a, b] : rows) os << "(" << a << "," << b << ") ";
  return os.str();
}

class AggregatePropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: every registered aggregate matches a direct fold over the
// same values.
TEST_P(AggregatePropertyTest, MatchesDirectFold) {
  const auto& c = GetParam();
  for (const std::string name : {"cnt", "sum", "avg", "min", "max"}) {
    Rng rng = MakeTestRng(c.seed);
    ASSERT_OK_AND_ASSIGN(auto agg, MakeAggregate(name));
    agg->Reset();
    std::vector<int64_t> values;
    for (int i = 0; i < c.n; ++i) {
      int64_t v = rng.UniformInt(-500, 500);
      values.push_back(v);
      agg->Update(Value(v));
    }
    int64_t sum = 0, mn = values[0], mx = values[0];
    for (int64_t v : values) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    EXPECT_EQ(agg->count(), static_cast<uint64_t>(c.n)) << name;
    Value got = agg->Final();
    if (name == "cnt") {
      EXPECT_EQ(got.AsInt(), c.n);
    } else if (name == "sum") {
      EXPECT_EQ(got.AsInt(), sum) << name;
    } else if (name == "avg") {
      EXPECT_DOUBLE_EQ(got.AsNumeric(),
                       static_cast<double>(sum) / c.n);
    } else if (name == "min") {
      EXPECT_EQ(got.AsInt(), mn);
    } else {
      EXPECT_EQ(got.AsInt(), mx);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AggregatePropertyTest,
                         ::testing::Values(SeedCase{30, 1}, SeedCase{31, 17},
                                           SeedCase{32, 256},
                                           SeedCase{33, 777}));

using Row = std::pair<int64_t, int64_t>;  // (A, B)

std::vector<Tuple> RowsToTuples(const std::vector<Row>& rows) {
  SchemaPtr schema = SchemaAB();
  std::vector<Tuple> tuples;
  for (const auto& [a, b] : rows) {
    tuples.push_back(MakeTuple(schema, {Value(a), Value(b)}));
  }
  return tuples;
}

class TumbleEveryNPropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: tumble in every_n mode equals the reference "per-key sums of
// consecutive chunks of n values" (drain flushing the final partials).
TEST_P(TumbleEveryNPropertyTest, MatchesChunkedReference) {
  const auto& c = GetParam();
  Rng rng = MakeTestRng(c.seed);
  const int64_t n = rng.UniformInt(2, 5);
  std::vector<Row> rows;
  for (int i = 0; i < c.n; ++i) {
    rows.push_back({rng.UniformInt(0, 5), rng.UniformInt(0, 99)});
  }
  auto spec = TumbleSpec("sum", "B", {"A"});
  spec.SetParam("emit", Value("every_n"));
  spec.SetParam("n", Value(n));

  // Mismatch detector, reused by the shrinker: per-key emitted sums vs
  // per-key chunked reference sums.
  auto mismatch = [&](const std::vector<Row>& input) {
    auto out = RunUnaryOp(spec, SchemaAB(), RowsToTuples(input), true);
    if (!out.ok()) return true;
    std::map<int64_t, std::vector<int64_t>> got, want;
    for (const Tuple& t : *out) {
      got[GetInt(t, "A")].push_back(GetInt(t, "Result"));
    }
    std::map<int64_t, std::vector<int64_t>> per_key;
    for (const auto& [a, b] : input) per_key[a].push_back(b);
    for (const auto& [a, values] : per_key) {
      for (size_t at = 0; at < values.size(); at += static_cast<size_t>(n)) {
        size_t end = std::min(values.size(), at + static_cast<size_t>(n));
        int64_t sum = 0;
        for (size_t j = at; j < end; ++j) sum += values[j];
        want[a].push_back(sum);
      }
    }
    return got != want;
  };

  if (mismatch(rows)) {
    std::vector<Row> minimal = ShrinkList<Row>(rows, mismatch);
    FAIL() << "tumble every_n (n=" << n
           << ") diverges from chunked reference; minimal failing input: "
           << DescribeRows(minimal);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TumbleEveryNPropertyTest,
                         ::testing::Values(SeedCase{40, 30}, SeedCase{41, 100},
                                           SeedCase{42, 333},
                                           SeedCase{43, 998}));

struct WindowCase {
  uint64_t seed;
  int n;
  int64_t window;
  int64_t advance;
};

class WindowAggPropertyTest : public ::testing::TestWithParam<WindowCase> {};

// Invariant: xsection(sum) with groupby equals the reference "sum of the
// last `window` values at every position p >= window-1 where
// (p - window + 1) % advance == 0", independently per key.
TEST_P(WindowAggPropertyTest, XSectionMatchesSlidingReference) {
  const auto& c = GetParam();
  Rng rng = MakeTestRng(c.seed);
  std::vector<Row> rows;
  for (int i = 0; i < c.n; ++i) {
    rows.push_back({rng.UniformInt(0, 3), rng.UniformInt(0, 50)});
  }
  auto spec = XSectionSpec("sum", "B", c.window, c.advance, {"A"});

  auto mismatch = [&](const std::vector<Row>& input) {
    auto out = RunUnaryOp(spec, SchemaAB(), RowsToTuples(input));
    if (!out.ok()) return true;
    std::map<int64_t, std::vector<int64_t>> got, want;
    for (const Tuple& t : *out) {
      got[GetInt(t, "A")].push_back(GetInt(t, "Result"));
    }
    std::map<int64_t, std::vector<int64_t>> per_key;
    for (const auto& [a, b] : input) per_key[a].push_back(b);
    for (const auto& [a, values] : per_key) {
      for (size_t p = static_cast<size_t>(c.window) - 1; p < values.size();
           ++p) {
        size_t lo = p - static_cast<size_t>(c.window) + 1;
        if (lo % static_cast<size_t>(c.advance) != 0) continue;
        int64_t sum = 0;
        for (size_t j = lo; j <= p; ++j) sum += values[j];
        want[a].push_back(sum);
      }
    }
    return got != want;
  };

  if (mismatch(rows)) {
    std::vector<Row> minimal = ShrinkList<Row>(rows, mismatch);
    FAIL() << "xsection(window=" << c.window << ", advance=" << c.advance
           << ") diverges from sliding reference; minimal failing input: "
           << DescribeRows(minimal);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowAggPropertyTest,
    ::testing::Values(WindowCase{50, 60, 3, 1}, WindowCase{51, 120, 4, 4},
                      WindowCase{52, 250, 5, 2}, WindowCase{53, 500, 2, 1},
                      WindowCase{54, 77, 6, 3}));

class WSortBufferPropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: wsort with a buffer cap (timeout 0, so no timer involvement)
// equals an independent sorted-buffer + watermark model: when the buffer
// exceeds its cap the smallest element is emitted and becomes the
// watermark; arrivals below the watermark are dropped; drain emits the
// remainder in ascending order.
TEST_P(WSortBufferPropertyTest, MatchesSortedBufferReference) {
  const auto& c = GetParam();
  Rng rng = MakeTestRng(c.seed);
  const int64_t max_buffer = rng.UniformInt(3, 12);
  // Unique sort keys in random order: ties between equal keys would make
  // the reference's pick ambiguous without modeling the op's internals.
  std::vector<Row> rows;
  for (int i = 0; i < c.n; ++i) {
    rows.push_back({rng.UniformInt(0, 1000) * 1000 + i, i});
  }
  auto spec = WSortSpec({"A"}, /*timeout_us=*/0, max_buffer);

  auto mismatch = [&](const std::vector<Row>& input) {
    auto out = RunUnaryOp(spec, SchemaAB(), RowsToTuples(input), true);
    if (!out.ok()) return true;
    std::vector<int64_t> got;
    for (const Tuple& t : *out) got.push_back(GetInt(t, "A"));
    std::vector<int64_t> want;
    std::vector<int64_t> buffer;
    int64_t watermark = -1;
    for (const auto& [a, b] : input) {
      if (a < watermark) continue;  // late: reference model drops it
      buffer.insert(std::upper_bound(buffer.begin(), buffer.end(), a), a);
      while (static_cast<int64_t>(buffer.size()) > max_buffer) {
        watermark = buffer.front();
        want.push_back(buffer.front());
        buffer.erase(buffer.begin());
      }
    }
    want.insert(want.end(), buffer.begin(), buffer.end());
    return got != want;
  };

  if (mismatch(rows)) {
    std::vector<Row> minimal = ShrinkList<Row>(rows, mismatch);
    FAIL() << "wsort(max_buffer=" << max_buffer
           << ") diverges from sorted-buffer reference; minimal failing "
              "input: "
           << DescribeRows(minimal);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WSortBufferPropertyTest,
                         ::testing::Values(SeedCase{60, 25}, SeedCase{61, 80},
                                           SeedCase{62, 300},
                                           SeedCase{63, 1000}));

// ---- Batch-vs-scalar equivalence (BatchOracle) ---------------------------
//
// Contract under test: for any operator, chunking an input stream through
// ProcessBatch is emission-equivalent to per-tuple Process — same tuples in
// the same order on the same outputs, same seq/trace stamping, same
// operator counters, and the same first error. The scalar run is the
// oracle; the batched run must match it byte for byte at every batch size,
// including sizes that leave odd tails. On mismatch the failing input list
// is minimized with ShrinkList.

/// One canonical line per emission: output index, seq, trace id, values.
std::string CanonicalEmissions(const CollectingEmitter& emitter) {
  std::ostringstream os;
  for (const auto& [output, t] : emitter.emissions()) {
    os << output << " seq=" << t.seq() << " trace=" << t.trace_id()
       << " ts=" << t.timestamp().micros() << " [";
    for (size_t i = 0; i < t.num_values(); ++i) {
      if (i > 0) os << "|";
      os << t.value(i).ToString();
    }
    os << "]\n";
  }
  return os.str();
}

struct OracleRun {
  std::string emissions;
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  std::string first_error;  // empty when every Process/ProcessBatch was OK
};

/// Replicates the scheduler's per-tuple trace propagation (AuroraEngine's
/// RoutingEmitter): everything emitted while processing tuple t inherits
/// t's trace id unless already traced. ProcessBatch folds this stamping
/// into its BatchEmitter, so the scalar oracle must model it too.
class TraceStampingEmitter : public Emitter {
 public:
  explicit TraceStampingEmitter(Emitter* inner) : inner_(inner) {}
  void SetCurrent(const Tuple& t) { trace_id_ = t.trace_id(); }
  void Emit(int output, Tuple t) override {
    if (trace_id_ != 0 && t.trace_id() == 0) t.set_trace_id(trace_id_);
    inner_->Emit(output, std::move(t));
  }

 private:
  Emitter* inner_;
  uint64_t trace_id_ = 0;
};

/// Scalar oracle: per-tuple Process with engine semantics — trace ids
/// stamped per input tuple, a failing tuple emits nothing and the first
/// error is recorded, later tuples still run (that is what both schedulers
/// do with deferred_error_).
OracleRun RunScalarOracle(const OperatorSpec& spec, const SchemaPtr& schema,
                          const std::vector<Tuple>& tuples, bool drain) {
  OracleRun run;
  auto op = std::move(CreateOperator(spec)).ValueUnsafe();
  AURORA_CHECK(op->Init({schema}).ok());
  CollectingEmitter emitter;
  TraceStampingEmitter stamping(&emitter);
  for (const Tuple& t : tuples) {
    stamping.SetCurrent(t);
    Status st = op->Process(0, t, t.timestamp(), &stamping);
    if (!st.ok() && run.first_error.empty()) run.first_error = st.ToString();
  }
  if (drain) op->Drain(&emitter);
  run.emissions = CanonicalEmissions(emitter);
  run.tuples_in = op->tuples_in();
  run.tuples_out = op->tuples_out();
  return run;
}

/// Batched run: the same stream chunked into TupleBatches of `batch_size`
/// (the final chunk is the odd tail whenever the sizes do not divide).
OracleRun RunBatched(const OperatorSpec& spec, const SchemaPtr& schema,
                     const std::vector<Tuple>& tuples, int batch_size,
                     bool drain) {
  OracleRun run;
  auto op = std::move(CreateOperator(spec)).ValueUnsafe();
  AURORA_CHECK(op->Init({schema}).ok());
  CollectingEmitter emitter;
  TupleBatch batch;
  batch.Reserve(static_cast<size_t>(batch_size));
  for (size_t at = 0; at < tuples.size();
       at += static_cast<size_t>(batch_size)) {
    batch.Clear();
    size_t end = std::min(tuples.size(), at + static_cast<size_t>(batch_size));
    for (size_t i = at; i < end; ++i) {
      batch.Push(tuples[i], tuples[i].timestamp());
    }
    Status st = op->ProcessBatch(0, batch, &emitter);
    if (!st.ok() && run.first_error.empty()) run.first_error = st.ToString();
  }
  if (drain) op->Drain(&emitter);
  run.emissions = CanonicalEmissions(emitter);
  run.tuples_in = op->tuples_in();
  run.tuples_out = op->tuples_out();
  return run;
}

/// The fixture core: "" when scalar and batched agree on emissions,
/// counters, and first error; a human-readable diff otherwise.
std::string BatchOracleDiff(const OperatorSpec& spec, const SchemaPtr& schema,
                            const std::vector<Tuple>& tuples, int batch_size,
                            bool drain) {
  OracleRun scalar = RunScalarOracle(spec, schema, tuples, drain);
  OracleRun batched = RunBatched(spec, schema, tuples, batch_size, drain);
  std::ostringstream os;
  if (scalar.emissions != batched.emissions) {
    os << "emissions diverge at batch_size=" << batch_size << "\n-- scalar:\n"
       << scalar.emissions << "-- batched:\n" << batched.emissions;
  }
  if (scalar.tuples_in != batched.tuples_in) {
    os << "tuples_in: scalar=" << scalar.tuples_in
       << " batched=" << batched.tuples_in << "\n";
  }
  if (scalar.tuples_out != batched.tuples_out) {
    os << "tuples_out: scalar=" << scalar.tuples_out
       << " batched=" << batched.tuples_out << "\n";
  }
  if (scalar.first_error != batched.first_error) {
    os << "first error: scalar='" << scalar.first_error << "' batched='"
       << batched.first_error << "'\n";
  }
  return os.str();
}

/// Seeded random (A, B) stream with seq numbers 1..n, millisecond
/// timestamps, and a trace id on every third tuple (exercises the
/// BatchEmitter seq/trace stamping against CountingEmitter's).
std::vector<Tuple> BatchStream(uint64_t seed, int n, int64_t a_range,
                               int64_t b_lo, int64_t b_hi) {
  Rng rng = MakeTestRng(seed);
  SchemaPtr schema = SchemaAB();
  std::vector<Tuple> tuples;
  for (int i = 0; i < n; ++i) {
    Tuple t = MakeTuple(schema, {Value(rng.UniformInt(0, a_range)),
                                 Value(rng.UniformInt(b_lo, b_hi))});
    t.set_seq(static_cast<SeqNo>(i + 1));
    t.set_timestamp(SimTime::Millis(i + 1));
    if (i % 3 == 0) t.set_trace_id(static_cast<uint64_t>(1000 + i));
    tuples.push_back(std::move(t));
  }
  return tuples;
}

struct BatchOpCase {
  const char* name;
  uint64_t seed;
  int n;
};

/// Every unary operator kind under one sweep. Batch sizes cover the
/// degenerate (1), small primes that never divide the stream (2, 7 — odd
/// tails), and the bench's wide setting (64, larger than most streams).
class BatchOracleTest : public ::testing::TestWithParam<BatchOpCase> {
 protected:
  void CheckAllBatchSizes(const OperatorSpec& spec, const SchemaPtr& schema,
                          const std::vector<Tuple>& tuples, bool drain) {
    for (int batch_size : {1, 2, 7, 64}) {
      std::string diff = BatchOracleDiff(spec, schema, tuples, batch_size,
                                         drain);
      if (diff.empty()) continue;
      // Minimize on the first failing batch size: fewer rows, same diff.
      auto mismatch = [&](const std::vector<Tuple>& input) {
        return !BatchOracleDiff(spec, schema, input, batch_size, drain)
                    .empty();
      };
      std::vector<Tuple> minimal = ShrinkList<Tuple>(tuples, mismatch);
      std::ostringstream rows;
      for (const Tuple& t : minimal) {
        rows << "(" << GetInt(t, "A") << "," << GetInt(t, "B") << ") ";
      }
      FAIL() << spec.ToString() << " batch_size=" << batch_size
             << " diverges from scalar oracle; minimal failing input: "
             << rows.str() << "\n" << diff;
    }
  }
};

TEST_P(BatchOracleTest, FilterOneWay) {
  const auto& c = GetParam();
  CheckAllBatchSizes(
      FilterSpec(Predicate::Compare("A", CompareOp::kLt, Value(int64_t{25}))),
      SchemaAB(), BatchStream(c.seed, c.n, 50, -100, 100), false);
}

TEST_P(BatchOracleTest, FilterTwoWay) {
  const auto& c = GetParam();
  CheckAllBatchSizes(
      FilterSpec(Predicate::Compare("A", CompareOp::kGe, Value(int64_t{25})),
                 /*two_way=*/true),
      SchemaAB(), BatchStream(c.seed + 1, c.n, 50, -100, 100), false);
}

TEST_P(BatchOracleTest, FilterBooleanTree) {
  const auto& c = GetParam();
  // And/Or/Not over compares: exercises the vectorized combine loops.
  Predicate p = Predicate::Or(
      Predicate::And(
          Predicate::Compare("A", CompareOp::kGt, Value(int64_t{10})),
          Predicate::Compare("B", CompareOp::kLe, Value(int64_t{0}))),
      Predicate::Not(
          Predicate::Compare("A", CompareOp::kNe, Value(int64_t{7}))));
  CheckAllBatchSizes(FilterSpec(std::move(p)), SchemaAB(),
                     BatchStream(c.seed + 2, c.n, 50, -100, 100), false);
}

TEST_P(BatchOracleTest, FilterDoubleConstantAgainstIntColumn) {
  const auto& c = GetParam();
  // Mixed-numeric compare goes through the AsNumeric column path.
  CheckAllBatchSizes(
      FilterSpec(Predicate::Compare("A", CompareOp::kGt, Value(24.5))),
      SchemaAB(), BatchStream(c.seed + 3, c.n, 50, -100, 100), false);
}

TEST_P(BatchOracleTest, MapInt64FastPath) {
  const auto& c = GetParam();
  // add/sub/mul over int64 fields and constants: the vectorized Expr tree.
  std::vector<std::pair<std::string, Expr>> proj;
  proj.emplace_back("S",
                    Expr::Arith(ArithOp::kAdd, Expr::FieldRef("A"),
                                Expr::Arith(ArithOp::kMul, Expr::FieldRef("B"),
                                            Expr::Constant(Value(int64_t{3})))));
  proj.emplace_back("D", Expr::Arith(ArithOp::kSub, Expr::FieldRef("B"),
                                     Expr::FieldRef("A")));
  CheckAllBatchSizes(MapSpec(std::move(proj)), SchemaAB(),
                     BatchStream(c.seed + 4, c.n, 50, -100, 100), false);
}

TEST_P(BatchOracleTest, MapDivFallbackWithErrors) {
  const auto& c = GetParam();
  // kDiv forces the per-tuple fallback, and B ranges over 0 so some tuples
  // divide by zero: the batched path must skip exactly those tuples and
  // surface the same first error the scalar path does.
  std::vector<std::pair<std::string, Expr>> proj;
  proj.emplace_back("Q", Expr::Arith(ArithOp::kDiv, Expr::FieldRef("A"),
                                     Expr::FieldRef("B")));
  CheckAllBatchSizes(MapSpec(std::move(proj)), SchemaAB(),
                     BatchStream(c.seed + 5, c.n, 50, 0, 3), false);
}

TEST_P(BatchOracleTest, TumbleRunBased) {
  const auto& c = GetParam();
  CheckAllBatchSizes(TumbleSpec("sum", "B", {"A"}), SchemaAB(),
                     BatchStream(c.seed + 6, c.n, 4, 0, 99), true);
}

TEST_P(BatchOracleTest, TumbleEveryN) {
  const auto& c = GetParam();
  auto spec = TumbleSpec("cnt", "B", {"A"});
  spec.SetParam("emit", Value("every_n"));
  spec.SetParam("n", Value(int64_t{3}));
  // Small key range: consecutive same-key tuples exercise the group memo.
  CheckAllBatchSizes(spec, SchemaAB(),
                     BatchStream(c.seed + 7, c.n, 2, 0, 99), true);
}

TEST_P(BatchOracleTest, WindowAggXSection) {
  const auto& c = GetParam();
  CheckAllBatchSizes(XSectionSpec("max", "B", 4, 2, {"A"}), SchemaAB(),
                     BatchStream(c.seed + 8, c.n, 3, 0, 50), false);
}

TEST_P(BatchOracleTest, WindowAggSlide) {
  const auto& c = GetParam();
  CheckAllBatchSizes(SlideSpec("avg", "B", 5, {"A"}), SchemaAB(),
                     BatchStream(c.seed + 9, c.n, 3, 0, 50), false);
}

TEST_P(BatchOracleTest, WSort) {
  const auto& c = GetParam();
  CheckAllBatchSizes(WSortSpec({"A"}, /*timeout_us=*/0, /*max_buffer=*/6),
                     SchemaAB(), BatchStream(c.seed + 10, c.n, 1000, 0, 9),
                     true);
}

TEST_P(BatchOracleTest, WSortUnbounded) {
  const auto& c = GetParam();
  // max_buffer=0: nothing is emitted mid-batch, so WSort's bulk-insert
  // fast path (one stable sort + hinted tree merge per batch) engages.
  CheckAllBatchSizes(WSortSpec({"A"}, /*timeout_us=*/0, /*max_buffer=*/0),
                     SchemaAB(), BatchStream(c.seed + 12, c.n, 1000, 0, 9),
                     true);
}

TEST_P(BatchOracleTest, Resample) {
  const auto& c = GetParam();
  CheckAllBatchSizes(ResampleSpec("B", /*interval_us=*/2000), SchemaAB(),
                     BatchStream(c.seed + 11, c.n, 50, 0, 100), true);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchOracleTest,
                         ::testing::Values(BatchOpCase{"tiny", 70, 1},
                                           BatchOpCase{"odd", 71, 13},
                                           BatchOpCase{"mid", 72, 129},
                                           BatchOpCase{"big", 73, 500}));

// Multi-input boxes never get batch-dequeued by the schedulers, but the
// base-class ProcessBatch must still be emission-equivalent per input.
TEST(BatchOracleMultiInputTest, UnionDefaultLoopMatchesScalar) {
  SchemaPtr schema = SchemaAB();
  std::vector<Tuple> a = BatchStream(80, 37, 50, 0, 9);
  std::vector<Tuple> b = BatchStream(81, 37, 50, 0, 9);
  auto run = [&](bool batched) {
    auto op = std::move(CreateOperator(UnionSpec(2))).ValueUnsafe();
    AURORA_CHECK(op->Init({schema, schema}).ok());
    CollectingEmitter emitter;
    if (batched) {
      TupleBatch ba, bb;
      for (const Tuple& t : a) ba.Push(t, t.timestamp());
      for (const Tuple& t : b) bb.Push(t, t.timestamp());
      EXPECT_OK(op->ProcessBatch(0, ba, &emitter));
      EXPECT_OK(op->ProcessBatch(1, bb, &emitter));
    } else {
      for (const Tuple& t : a) {
        EXPECT_OK(op->Process(0, t, t.timestamp(), &emitter));
      }
      for (const Tuple& t : b) {
        EXPECT_OK(op->Process(1, t, t.timestamp(), &emitter));
      }
    }
    EXPECT_EQ(op->tuples_in(), a.size() + b.size());
    return CanonicalEmissions(emitter);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(BatchOracleMultiInputTest, JoinDefaultLoopMatchesScalar) {
  SchemaPtr left = SchemaAB();
  SchemaPtr right = Schema::Make(
      {Field{"K", ValueType::kInt64}, Field{"V", ValueType::kInt64}});
  std::vector<Tuple> lefts = BatchStream(82, 29, 9, 0, 99);
  std::vector<Tuple> rights;
  {
    Rng rng = MakeTestRng(83);
    for (int i = 0; i < 29; ++i) {
      Tuple t = MakeTuple(right, {Value(rng.UniformInt(0, 9)), Value(i)});
      t.set_timestamp(SimTime::Millis(1));
      rights.push_back(std::move(t));
    }
  }
  for (Tuple& t : lefts) t.set_timestamp(SimTime::Millis(1));
  auto run = [&](bool batched) {
    auto op =
        std::move(CreateOperator(JoinSpec("A", "K", 1'000'000))).ValueUnsafe();
    AURORA_CHECK(op->Init({left, right}).ok());
    CollectingEmitter emitter;
    if (batched) {
      TupleBatch bl, br;
      for (const Tuple& t : lefts) bl.Push(t, t.timestamp());
      for (const Tuple& t : rights) br.Push(t, t.timestamp());
      EXPECT_OK(op->ProcessBatch(0, bl, &emitter));
      EXPECT_OK(op->ProcessBatch(1, br, &emitter));
    } else {
      for (const Tuple& t : lefts) {
        EXPECT_OK(op->Process(0, t, t.timestamp(), &emitter));
      }
      for (const Tuple& t : rights) {
        EXPECT_OK(op->Process(1, t, t.timestamp(), &emitter));
      }
    }
    return CanonicalEmissions(emitter);
  };
  EXPECT_EQ(run(false), run(true));
}

// Probe-side batching with the (key, timestamp) match memo: runs of
// identical probes, advancing timestamps (expiry between runs), and a
// post-probe scalar push that checks the probe buffer came out identical.
TEST(BatchOracleMultiInputTest, JoinProbeBatchMemoMatchesScalar) {
  SchemaPtr left = SchemaAB();
  SchemaPtr right = Schema::Make(
      {Field{"K", ValueType::kInt64}, Field{"V", ValueType::kInt64}});
  Rng rng = MakeTestRng(84);
  std::vector<Tuple> rights;
  for (int i = 0; i < 40; ++i) {
    Tuple t = MakeTuple(right, {Value(rng.UniformInt(0, 5)), Value(i)});
    t.set_timestamp(SimTime::Millis(rng.UniformInt(1, 30)));
    rights.push_back(std::move(t));
  }
  std::vector<Tuple> lefts;
  SimTime ts = SimTime::Millis(5);
  int64_t run_key = 0;
  for (int i = 0; i < 60; ++i) {
    if (i % 4 == 0) {
      ts += SimDuration::Millis(rng.UniformInt(0, 3));
      run_key = rng.UniformInt(0, 5);
    }
    Tuple t = MakeTuple(left, {Value(run_key), Value(i)});
    t.set_timestamp(ts);
    t.set_seq(static_cast<SeqNo>(100 + i));
    lefts.push_back(std::move(t));
  }
  Tuple post = MakeTuple(right, {Value(run_key), Value(int64_t{999})});
  post.set_timestamp(ts);
  auto run = [&](bool batched) {
    auto op =
        std::move(CreateOperator(JoinSpec("A", "K", 10'000))).ValueUnsafe();
    AURORA_CHECK(op->Init({left, right}).ok());
    CollectingEmitter emitter;
    for (const Tuple& r : rights) {
      EXPECT_OK(op->Process(1, r, r.timestamp(), &emitter));
    }
    if (batched) {
      TupleBatch batch;
      for (const Tuple& l : lefts) batch.Push(l, l.timestamp());
      EXPECT_OK(op->ProcessBatch(0, batch, &emitter));
    } else {
      for (const Tuple& l : lefts) {
        EXPECT_OK(op->Process(0, l, l.timestamp(), &emitter));
      }
    }
    // A late right tuple joins against whatever the probe side buffered:
    // catches any divergence in the probe buffer or its expiry.
    EXPECT_OK(op->Process(1, post, post.timestamp(), &emitter));
    return CanonicalEmissions(emitter);
  };
  EXPECT_EQ(run(false), run(true));
}

// ---- String-schema vectorization (TupleBatch::StrColumn) -----------------

SchemaPtr SchemaSB() {
  return Schema::Make(
      {Field{"S", ValueType::kString}, Field{"B", ValueType::kInt64}});
}

/// Seeded stream over (S:string, B:int64) with the same seq/trace stamping
/// as BatchStream; words repeat (and include "") so string compares exercise
/// every ordering against the constant.
std::vector<Tuple> StringStream(uint64_t seed, int n) {
  static const char* kWords[] = {"alpha", "bravo", "charlie",
                                 "delta", "echo",  ""};
  Rng rng = MakeTestRng(seed);
  SchemaPtr schema = SchemaSB();
  std::vector<Tuple> tuples;
  for (int i = 0; i < n; ++i) {
    Tuple t = MakeTuple(schema, {Value(kWords[rng.UniformInt(0, 5)]),
                                 Value(rng.UniformInt(-100, 100))});
    t.set_seq(static_cast<SeqNo>(i + 1));
    t.set_timestamp(SimTime::Millis(i + 1));
    if (i % 3 == 0) t.set_trace_id(static_cast<uint64_t>(2000 + i));
    tuples.push_back(std::move(t));
  }
  return tuples;
}

TEST(BatchOracleStringTest, StrColumnExposesPooledViews) {
  std::vector<Tuple> tuples = StringStream(97, 9);
  TupleBatch batch;
  for (const Tuple& t : tuples) batch.Push(t, t.timestamp());
  const std::string_view* col = batch.StrColumn(0);
  ASSERT_NE(col, nullptr);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(col[i], std::string_view(tuples[i].value(0).AsString())) << i;
  }
  // The int field is not a string column.
  EXPECT_EQ(batch.StrColumn(1), nullptr);
}

TEST(BatchOracleStringTest, FilterStringCompareMatchesScalar) {
  // String column vs string constant: the vectorized compare path, every
  // operator, odd-tail and wide batch sizes.
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    for (int batch_size : {1, 7, 64}) {
      std::string diff = BatchOracleDiff(
          FilterSpec(Predicate::Compare("S", op, Value("charlie"))),
          SchemaSB(), StringStream(95, 113), batch_size, false);
      EXPECT_TRUE(diff.empty())
          << "op=" << CompareOpName(op) << " batch=" << batch_size << "\n"
          << diff;
    }
  }
}

TEST(BatchOracleStringTest, MapIdentityStringProjectionMatchesScalar) {
  // A bare string field ref plus an int arithmetic column: identity
  // projections copy values straight out of the tuple, so a string column
  // no longer forces Map onto the scalar path.
  for (int batch_size : {1, 7, 64}) {
    std::vector<std::pair<std::string, Expr>> proj;
    proj.emplace_back("S2", Expr::FieldRef("S"));
    proj.emplace_back("B2", Expr::Arith(ArithOp::kAdd, Expr::FieldRef("B"),
                                        Expr::Constant(Value(int64_t{7}))));
    std::string diff =
        BatchOracleDiff(MapSpec(std::move(proj)), SchemaSB(),
                        StringStream(96, 77), batch_size, false);
    EXPECT_TRUE(diff.empty()) << "batch=" << batch_size << "\n" << diff;
  }
}

// ---- BatchEmitter chunked-emission stamping (regression) -----------------
//
// Seq/trace stamping must happen at Emit time, not at flush time: a chunk
// boundary falling between two emissions must never change which input
// tuple's metadata an emission inherits.

class ChunkRecordingEmitter : public Emitter {
 public:
  void Emit(int output, Tuple t) override {
    chunk_sizes.push_back(1);
    tuples.emplace_back(output, std::move(t));
  }
  void EmitChunk(int output, Tuple* ts, size_t n) override {
    chunk_sizes.push_back(n);
    for (size_t i = 0; i < n; ++i) {
      tuples.emplace_back(output, std::move(ts[i]));
    }
  }
  std::vector<size_t> chunk_sizes;
  std::vector<std::pair<int, Tuple>> tuples;
};

TEST(BatchEmitterTest, SeqStampingPinnedAcrossChunkBoundary) {
  SchemaPtr schema = SchemaAB();
  ChunkRecordingEmitter inner;
  uint64_t counter = 0;
  Operator::BatchEmitter be(&inner, &counter);
  be.EnableBuffering(2);  // force a flush after every 2 staged emissions
  for (int i = 0; i < 5; ++i) {
    Tuple in = MakeTuple(schema, {Value(int64_t{i}), Value(int64_t{0})});
    in.set_seq(static_cast<SeqNo>(10 + i));
    in.set_trace_id(static_cast<uint64_t>(500 + i));
    be.SetCurrent(in);
    be.Emit(0, MakeTuple(schema, {Value(int64_t{i}), Value(int64_t{1})}));
  }
  be.Flush();
  ASSERT_EQ(inner.tuples.size(), 5u);
  EXPECT_EQ(counter, 5u);
  for (int i = 0; i < 5; ++i) {
    // Every emission carries the seq/trace of the input tuple current at
    // its own Emit call, even though flushes happened at 2, 4, and the
    // tail — chunk boundaries must not smear stamping across emissions.
    EXPECT_EQ(inner.tuples[i].second.seq(), static_cast<SeqNo>(10 + i)) << i;
    EXPECT_EQ(inner.tuples[i].second.trace_id(),
              static_cast<uint64_t>(500 + i))
        << i;
  }
  // Delivery really was chunked, not unrolled per tuple.
  EXPECT_EQ(inner.chunk_sizes, (std::vector<size_t>{2, 2, 1}));
}

TEST(BatchEmitterTest, FlushSplitsChunksPerOutputRun) {
  SchemaPtr schema = SchemaAB();
  ChunkRecordingEmitter inner;
  uint64_t counter = 0;
  Operator::BatchEmitter be(&inner, &counter);
  be.EnableBuffering(8);
  const int outputs[] = {0, 0, 1, 1, 0};
  for (int i = 0; i < 5; ++i) {
    Tuple in = MakeTuple(schema, {Value(int64_t{i}), Value(int64_t{0})});
    in.set_seq(static_cast<SeqNo>(i + 1));
    be.SetCurrent(in);
    be.Emit(outputs[i],
            MakeTuple(schema, {Value(int64_t{i}), Value(int64_t{1})}));
  }
  be.Flush();
  // One chunk per consecutive same-output run, original order preserved.
  EXPECT_EQ(inner.chunk_sizes, (std::vector<size_t>{2, 2, 1}));
  ASSERT_EQ(inner.tuples.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(inner.tuples[i].first, outputs[i]) << i;
    EXPECT_EQ(GetInt(inner.tuples[i].second, "A"), i);
    EXPECT_EQ(inner.tuples[i].second.seq(), static_cast<SeqNo>(i + 1)) << i;
  }
}

// Degenerate shapes the schedulers can produce: an empty batch (queue
// drained by a race in the threaded engine) must be a no-op, and a
// batch of one must equal a single Process call.
TEST(BatchOracleEdgeTest, EmptyBatchIsANoOp) {
  auto op = std::move(CreateOperator(TumbleSpec("sum", "B", {"A"})))
                .ValueUnsafe();
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  TupleBatch batch;
  ASSERT_OK(op->ProcessBatch(0, batch, &emitter));
  EXPECT_TRUE(emitter.emissions().empty());
  EXPECT_EQ(op->tuples_in(), 0u);
  EXPECT_EQ(op->tuples_out(), 0u);
}

TEST(BatchOracleEdgeTest, BatchOfOneEqualsScalarCall) {
  std::vector<Tuple> one = BatchStream(90, 1, 50, 0, 9);
  std::string diff = BatchOracleDiff(
      FilterSpec(Predicate::Compare("A", CompareOp::kGe, Value(int64_t{0}))),
      SchemaAB(), one, /*batch_size=*/1, false);
  EXPECT_TRUE(diff.empty()) << diff;
}

TEST(BatchOracleEdgeTest, BadInputIndexRejectedWithoutSideEffects) {
  auto op = std::move(CreateOperator(FilterSpec(Predicate::True())))
                .ValueUnsafe();
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  TupleBatch batch;
  batch.Push(BatchStream(91, 1, 50, 0, 9)[0], SimTime::Millis(1));
  EXPECT_FALSE(op->ProcessBatch(1, batch, &emitter).ok());
  EXPECT_TRUE(emitter.emissions().empty());
  EXPECT_EQ(op->tuples_in(), 0u);
}

// A batch whose tuples span two schemas must not take any columnar fast
// path (uniform_schema() is false); the per-tuple fallback keeps the
// filter correct for the rows that do carry the bound field.
TEST(BatchOracleEdgeTest, MixedSchemaBatchFallsBackPerTuple) {
  SchemaPtr ab = SchemaAB();
  std::vector<Tuple> tuples = BatchStream(92, 16, 50, 0, 9);
  TupleBatch batch;
  for (const Tuple& t : tuples) batch.Push(t, t.timestamp());
  EXPECT_TRUE(batch.uniform_schema());
  // Same fields, distinct Schema instance: pointer-uniformity breaks.
  SchemaPtr ab2 = Schema::Make({Field{"A", ValueType::kInt64},
                                Field{"B", ValueType::kInt64}});
  Tuple odd = MakeTuple(ab2, {Value(int64_t{1}), Value(int64_t{2})});
  odd.set_timestamp(SimTime::Millis(99));
  batch.Push(odd, odd.timestamp());
  EXPECT_FALSE(batch.uniform_schema());
  EXPECT_EQ(batch.I64Column(0), nullptr);

  auto op = std::move(CreateOperator(FilterSpec(Predicate::Compare(
                          "A", CompareOp::kLt, Value(int64_t{25})))))
                .ValueUnsafe();
  ASSERT_OK(op->Init({ab}));
  CollectingEmitter emitter;
  ASSERT_OK(op->ProcessBatch(0, batch, &emitter));
  size_t want = 0;
  for (const Tuple& t : tuples) {
    if (t.value(0).AsInt() < 25) ++want;
  }
  if (odd.value(0).AsInt() < 25) ++want;
  EXPECT_EQ(emitter.emissions().size(), want);
}

// The minimizer itself: a failing predicate defined by containing a magic
// value must shrink to exactly that one element.
TEST(ShrinkListTest, MinimizesToSingleCulprit) {
  std::vector<int> items;
  for (int i = 0; i < 100; ++i) items.push_back(i);
  auto contains_culprit = [](const std::vector<int>& xs) {
    return std::find(xs.begin(), xs.end(), 73) != xs.end();
  };
  std::vector<int> minimal = ShrinkList<int>(items, contains_culprit);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], 73);
}

TEST(ShrinkListTest, KeepsInterdependentPair) {
  // When failure needs two elements jointly, both must survive.
  std::vector<int> items = {5, 1, 9, 2, 7, 3, 8, 4};
  auto needs_both = [](const std::vector<int>& xs) {
    bool a = std::find(xs.begin(), xs.end(), 9) != xs.end();
    bool b = std::find(xs.begin(), xs.end(), 4) != xs.end();
    return a && b;
  };
  std::vector<int> minimal = ShrinkList<int>(items, needs_both);
  EXPECT_EQ(minimal, (std::vector<int>{9, 4}));
}

}  // namespace
}  // namespace aurora
