// Randomized property sweeps over operator invariants, parameterized by
// seed and workload shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "ops/wsort_op.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::CollectingEmitter;
using testing_util::GetInt;
using testing_util::RunUnaryOp;
using testing_util::SchemaAB;

struct SeedCase {
  uint64_t seed;
  int n;
};

class WSortPropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: whatever arrives, the emitted sequence (including drain) is
// non-decreasing in the sort key, and emitted + dropped == received.
TEST_P(WSortPropertyTest, OutputSortedAndAccounted) {
  const auto& c = GetParam();
  Rng rng(c.seed);
  auto spec = WSortSpec({"A"}, /*timeout_us=*/5'000);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  auto* wsort = static_cast<WSortOp*>(op.get());
  CollectingEmitter emitter;
  SimTime now;
  for (int i = 0; i < c.n; ++i) {
    Tuple t = MakeTuple(SchemaAB(),
                        {Value(rng.UniformInt(0, 50)), Value(i)});
    now += SimDuration::Millis(static_cast<int64_t>(rng.Uniform(4)));
    t.set_timestamp(now);
    ASSERT_OK(op->Process(0, t, now, &emitter));
    op->OnTick(now, &emitter);
  }
  op->Drain(&emitter);
  std::vector<Tuple> out = emitter.OnOutput(0);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(GetInt(out[i - 1], "A"), GetInt(out[i], "A")) << "at " << i;
  }
  EXPECT_EQ(out.size() + wsort->dropped(), static_cast<size_t>(c.n));
}

INSTANTIATE_TEST_SUITE_P(Sweep, WSortPropertyTest,
                         ::testing::Values(SeedCase{1, 50}, SeedCase{2, 200},
                                           SeedCase{3, 500}, SeedCase{4, 31},
                                           SeedCase{5, 1000}));

class TumblePropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: with agg=cnt, the sum of all window counts (after drain)
// equals the number of input tuples, and each window's count equals its
// run length.
TEST_P(TumblePropertyTest, CountsPartitionTheInput) {
  const auto& c = GetParam();
  Rng rng(c.seed);
  SchemaPtr schema = SchemaAB();
  std::vector<Tuple> stream;
  int64_t group = 0;
  std::vector<int64_t> run_lengths;
  while (static_cast<int>(stream.size()) < c.n) {
    int64_t run = rng.UniformInt(1, 6);
    run = std::min<int64_t>(run, c.n - static_cast<int64_t>(stream.size()));
    run_lengths.push_back(run);
    for (int64_t j = 0; j < run; ++j) {
      stream.push_back(MakeTuple(schema, {Value(group), Value(j)}));
    }
    ++group;
  }
  ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> out,
      RunUnaryOp(TumbleSpec("cnt", "B", {"A"}), schema, stream, true));
  ASSERT_EQ(out.size(), run_lengths.size());
  int64_t total = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(GetInt(out[i], "Result"), run_lengths[i]) << "window " << i;
    total += GetInt(out[i], "Result");
  }
  EXPECT_EQ(total, c.n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TumblePropertyTest,
                         ::testing::Values(SeedCase{10, 40}, SeedCase{11, 123},
                                           SeedCase{12, 400},
                                           SeedCase{13, 999}));

class JoinPropertyTest : public ::testing::TestWithParam<SeedCase> {};

// Invariant: the join result is independent of which side a pair's tuples
// arrive on first (symmetric hash join).
TEST_P(JoinPropertyTest, SymmetricInArrivalOrder) {
  const auto& c = GetParam();
  SchemaPtr left = SchemaAB();
  SchemaPtr right = Schema::Make(
      {Field{"K", ValueType::kInt64}, Field{"V", ValueType::kInt64}});
  // A batch of left/right tuples with random keys, all within the window.
  Rng rng(c.seed);
  std::vector<Tuple> lefts, rights;
  for (int i = 0; i < c.n; ++i) {
    Tuple l = MakeTuple(left, {Value(rng.UniformInt(0, 9)), Value(i)});
    l.set_timestamp(SimTime::Millis(1));
    lefts.push_back(std::move(l));
    Tuple r = MakeTuple(right, {Value(rng.UniformInt(0, 9)), Value(i)});
    r.set_timestamp(SimTime::Millis(1));
    rights.push_back(std::move(r));
  }
  auto run = [&](bool left_first) {
    auto op = std::move(CreateOperator(JoinSpec("A", "K", 1'000'000))).ValueUnsafe();
    AURORA_CHECK(op->Init({left, right}).ok());
    CollectingEmitter emitter;
    if (left_first) {
      for (const auto& l : lefts) {
        (void)op->Process(0, l, SimTime::Millis(1), &emitter);
      }
      for (const auto& r : rights) {
        (void)op->Process(1, r, SimTime::Millis(1), &emitter);
      }
    } else {
      for (const auto& r : rights) {
        (void)op->Process(1, r, SimTime::Millis(1), &emitter);
      }
      for (const auto& l : lefts) {
        (void)op->Process(0, l, SimTime::Millis(1), &emitter);
      }
    }
    // Canonicalize: multiset of (left B, right V) pairs.
    std::multiset<std::pair<int64_t, int64_t>> pairs;
    for (const auto& t : emitter.OnOutput(0)) {
      pairs.insert({t.Get("B").AsInt(), t.Get("V").AsInt()});
    }
    return pairs;
  };
  EXPECT_EQ(run(true), run(false));
}

INSTANTIATE_TEST_SUITE_P(Sweep, JoinPropertyTest,
                         ::testing::Values(SeedCase{20, 20}, SeedCase{21, 60},
                                           SeedCase{22, 150}));

}  // namespace
}  // namespace aurora
