// XSection/Slide window aggregates, the windowed Join, and Resample — the
// remaining operators of §2.2.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::CollectingEmitter;
using testing_util::GetDouble;
using testing_util::GetInt;
using testing_util::RunUnaryOp;
using testing_util::SchemaAB;

Tuple T(int64_t a, int64_t b, int64_t ts_ms = 0) {
  Tuple t = MakeTuple(SchemaAB(), {Value(a), Value(b)});
  t.set_timestamp(SimTime::Millis(ts_ms));
  return t;
}

TEST(XSectionTest, TumblingCountWindows) {
  // window == advance: disjoint count windows.
  auto spec = XSectionSpec("sum", "B", 3, 3);
  std::vector<Tuple> in;
  for (int i = 1; i <= 9; ++i) in.push_back(T(0, i));
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out,
                       RunUnaryOp(spec, SchemaAB(), in));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(GetInt(out[0], "Result"), 6);    // 1+2+3
  EXPECT_EQ(GetInt(out[1], "Result"), 15);   // 4+5+6
  EXPECT_EQ(GetInt(out[2], "Result"), 24);   // 7+8+9
}

TEST(SlideTest, SlidingWindowPerTuple) {
  auto spec = SlideSpec("sum", "B", 3);
  std::vector<Tuple> in;
  for (int i = 1; i <= 6; ++i) in.push_back(T(0, i));
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out,
                       RunUnaryOp(spec, SchemaAB(), in));
  // First window fires when full (1,2,3), then slides by one.
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(GetInt(out[0], "Result"), 6);
  EXPECT_EQ(GetInt(out[1], "Result"), 9);
  EXPECT_EQ(GetInt(out[2], "Result"), 12);
  EXPECT_EQ(GetInt(out[3], "Result"), 15);
}

TEST(XSectionTest, PerGroupWindows) {
  auto spec = XSectionSpec("cnt", "B", 2, 2, {"A"});
  std::vector<Tuple> in = {T(1, 0), T(2, 0), T(1, 0), T(2, 0), T(1, 0)};
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out,
                       RunUnaryOp(spec, SchemaAB(), in));
  // Each group fills a 2-window independently.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(GetInt(out[0], "A"), 1);
  EXPECT_EQ(GetInt(out[1], "A"), 2);
}

TEST(XSectionTest, ValidatesWindowParams) {
  ASSERT_OK_AND_ASSIGN(OperatorPtr op,
                       CreateOperator(XSectionSpec("sum", "B", 0, 1)));
  EXPECT_TRUE(op->Init({SchemaAB()}).IsInvalidArgument());
  ASSERT_OK_AND_ASSIGN(OperatorPtr op2,
                       CreateOperator(XSectionSpec("sum", "B", 3, 5)));
  EXPECT_TRUE(op2->Init({SchemaAB()}).IsInvalidArgument());
}

SchemaPtr RightSchema() {
  return Schema::Make({Field{"K", ValueType::kInt64},
                       Field{"V", ValueType::kInt64}});
}

TEST(JoinTest, MatchesWithinWindow) {
  auto spec = JoinSpec("A", "K", /*window_us=*/100'000);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB(), RightSchema()}));
  EXPECT_EQ(op->output_schema(0)->ToString(),
            "(A:int64, B:int64, K:int64, V:int64)");
  CollectingEmitter emitter;
  ASSERT_OK(op->Process(0, T(1, 10, 0), SimTime::Millis(0), &emitter));
  Tuple r = MakeTuple(RightSchema(), {Value(1), Value(99)});
  r.set_timestamp(SimTime::Millis(50));
  ASSERT_OK(op->Process(1, r, SimTime::Millis(50), &emitter));
  ASSERT_EQ(emitter.emissions().size(), 1u);
  const Tuple joined = emitter.OnOutput(0)[0];
  EXPECT_EQ(GetInt(joined, "B"), 10);
  EXPECT_EQ(GetInt(joined, "V"), 99);
}

TEST(JoinTest, OutsideWindowNoMatch) {
  auto spec = JoinSpec("A", "K", 10'000);  // 10ms
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB(), RightSchema()}));
  CollectingEmitter emitter;
  ASSERT_OK(op->Process(0, T(1, 10, 0), SimTime::Millis(0), &emitter));
  Tuple r = MakeTuple(RightSchema(), {Value(1), Value(99)});
  r.set_timestamp(SimTime::Millis(50));
  ASSERT_OK(op->Process(1, r, SimTime::Millis(50), &emitter));
  EXPECT_TRUE(emitter.emissions().empty());
}

TEST(JoinTest, SelectivityCanExceedOne) {
  // §5.1 motivates sliding a join downstream because it "produces more
  // data than the input".
  auto spec = JoinSpec("A", "K", 1'000'000);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB(), RightSchema()}));
  CollectingEmitter emitter;
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK(op->Process(0, T(7, i, 1), SimTime::Millis(1), &emitter));
  }
  Tuple r = MakeTuple(RightSchema(), {Value(7), Value(0)});
  r.set_timestamp(SimTime::Millis(2));
  ASSERT_OK(op->Process(1, r, SimTime::Millis(2), &emitter));
  EXPECT_EQ(emitter.emissions().size(), 4u);
  EXPECT_GT(op->selectivity(), 0.5);
}

TEST(JoinTest, RenamesCollidingRightFields) {
  auto spec = JoinSpec("A", "A", 1000);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB(), SchemaAB()}));
  EXPECT_EQ(op->output_schema(0)->ToString(),
            "(A:int64, B:int64, r_A:int64, r_B:int64)");
}

TEST(ResampleTest, LinearInterpolationAtBoundaries) {
  auto spec = ResampleSpec("B", /*interval_us=*/10'000);  // every 10ms
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  ASSERT_OK(op->Process(0, T(0, 0, 0), SimTime::Millis(0), &emitter));
  ASSERT_OK(op->Process(0, T(0, 100, 20), SimTime::Millis(20), &emitter));
  // The first sample lands exactly on a boundary (0 ms), so boundaries at
  // 0, 10, and 20 ms interpolate between (0ms,0) and (20ms,100).
  std::vector<Tuple> out = emitter.OnOutput(0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(GetDouble(out[0], "B"), 0.0);
  EXPECT_DOUBLE_EQ(GetDouble(out[1], "B"), 50.0);
  EXPECT_DOUBLE_EQ(GetDouble(out[2], "B"), 100.0);
  EXPECT_EQ(GetInt(out[1], "ts"), 10'000);
}

TEST(ResampleTest, IrregularInputRegularOutput) {
  auto spec = ResampleSpec("B", 5'000);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  // Irregular arrivals at 1, 2, 13, 31 ms.
  for (auto [ms, v] : std::vector<std::pair<int, int>>{
           {1, 10}, {2, 20}, {13, 130}, {31, 310}}) {
    ASSERT_OK(op->Process(0, T(0, v, ms), SimTime::Millis(ms), &emitter));
  }
  std::vector<Tuple> out = emitter.OnOutput(0);
  // Boundaries: 5,10 (from 2→13 segment), 15,20,25,30 (13→31 segment).
  ASSERT_EQ(out.size(), 6u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_EQ(GetInt(out[i], "ts") - GetInt(out[i - 1], "ts"), 5'000);
  }
}

TEST(WindowAggTest, LineageStampsEarliestInWindow) {
  auto spec = XSectionSpec("sum", "B", 3, 3);
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
  CollectingEmitter emitter;
  for (int i = 0; i < 3; ++i) {
    Tuple t = T(0, i);
    t.set_seq(static_cast<SeqNo>(50 + i));
    ASSERT_OK(op->Process(0, t, SimTime(), &emitter));
  }
  ASSERT_EQ(emitter.emissions().size(), 1u);
  EXPECT_EQ(emitter.OnOutput(0)[0].seq(), 50u);
}

}  // namespace
}  // namespace aurora
