// Ad hoc queries at connection points (§2.2) and semantic (value-based)
// load shedding (§7.1).
#include <gtest/gtest.h>

#include <memory>

#include "engine/aurora_engine.h"
#include "engine/load_shedder.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::SchemaAB;

Tuple T(int64_t a, int64_t b) {
  return MakeTuple(SchemaAB(), {Value(a), Value(b)});
}

struct CpEngine {
  AuroraEngine engine;
  PortId in = -1, out = -1;
  ArcId cp_arc = -1;

  CpEngine() {
    in = *engine.AddInput("in", SchemaAB());
    out = *engine.AddOutput("out");
    BoxId f = *engine.AddBox(FilterSpec(Predicate::True()));
    AURORA_CHECK(engine.Connect(Endpoint::InputPort(in),
                                Endpoint::BoxPort(f, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(f, 0),
                                Endpoint::OutputPort(out)).ok());
    AURORA_CHECK(engine.InitializeBoxes().ok());
    cp_arc = *engine.FindArcInto(f, 0);
    RetentionPolicy policy;
    policy.max_tuples = 1000;
    AURORA_CHECK(engine.MakeConnectionPoint(cp_arc, "cp", policy).ok());
  }

  void Push(int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      AURORA_CHECK(engine.PushInput(in, T(i, i % 10), SimTime::Millis(i)).ok());
      AURORA_CHECK(engine.RunUntilQuiescent(SimTime::Millis(i)).ok());
    }
  }
};

TEST(AdHocQueryTest, ReplaysHistoryThenGoesLive) {
  CpEngine rig;
  rig.Push(0, 50);
  std::vector<int64_t> seen;
  ASSERT_OK_AND_ASSIGN(
      int token,
      rig.engine.AttachAdHocQuery(
          "cp", Predicate::Compare("B", CompareOp::kEq, Value(3)),
          [&](const Tuple& t, SimTime) { seen.push_back(GetInt(t, "A")); }));
  // History: A in {3, 13, 23, 33, 43}.
  EXPECT_EQ(seen.size(), 5u);
  // Live continuation: new matching tuples keep arriving.
  rig.Push(50, 70);
  EXPECT_EQ(seen.size(), 7u);  // + 53, 63
  EXPECT_EQ(seen.back(), 63);
  // Detach stops delivery.
  ASSERT_OK(rig.engine.DetachAdHocQuery("cp", token));
  rig.Push(70, 90);
  EXPECT_EQ(seen.size(), 7u);
}

TEST(AdHocQueryTest, MultipleIndependentQueries) {
  CpEngine rig;
  rig.Push(0, 20);
  int evens = 0, all = 0;
  ASSERT_OK(rig.engine
                .AttachAdHocQuery(
                    "cp", Predicate::HashPartition("A", 2, 0),
                    [&](const Tuple&, SimTime) { ++evens; })
                .status());
  ASSERT_OK(rig.engine
                .AttachAdHocQuery("cp", Predicate::True(),
                                  [&](const Tuple&, SimTime) { ++all; })
                .status());
  EXPECT_EQ(all, 20);
  EXPECT_GT(evens, 0);
  EXPECT_LT(evens, 20);
  rig.Push(20, 30);
  EXPECT_EQ(all, 30);
}

TEST(AdHocQueryTest, UnknownConnectionPointIsNotFound) {
  CpEngine rig;
  auto result = rig.engine.AttachAdHocQuery("nope", Predicate::True(),
                                            [](const Tuple&, SimTime) {});
  EXPECT_TRUE(result.status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Semantic shedding
// ---------------------------------------------------------------------------

struct SemanticRig {
  static EngineOptions Opts(SheddingPolicy policy) {
    EngineOptions opts;
    opts.shedder.policy = policy;
    opts.shedder.capacity_us_per_sec = 500.0;  // tiny: force heavy shedding
    opts.shedder.recompute_interval = SimDuration::Millis(50);
    return opts;
  }

  AuroraEngine engine;
  PortId in = -1, out = -1;
  std::vector<int64_t> delivered;

  explicit SemanticRig(SheddingPolicy policy) : engine(Opts(policy)) {
    in = *engine.AddInput("in", SchemaAB());
    out = *engine.AddOutput("out");
    OperatorSpec work = FilterSpec(Predicate::True());
    work.SetParam("cost_us", Value(50.0));
    BoxId f = *engine.AddBox(work);
    AURORA_CHECK(engine.Connect(Endpoint::InputPort(in),
                                Endpoint::BoxPort(f, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(f, 0),
                                Endpoint::OutputPort(out)).ok());
    AURORA_CHECK(engine.InitializeBoxes().ok());
    // Value-based QoS: tuples with high B matter; low B is expendable.
    QoSSpec spec;
    spec.loss = *UtilityGraph::Make({{0.0, 0.0}, {1.0, 1.0}});
    spec.value = *UtilityGraph::Make({{0.0, 0.0}, {9.0, 1.0}});
    spec.value_field = "B";
    AURORA_CHECK(engine.SetOutputQoS(out, spec).ok());
    engine.RebuildShedderModel();
    engine.SetOutputCallback(out, [this](const Tuple& t, SimTime) {
      delivered.push_back(t.Get("B").AsInt());
    });
  }

  void Offer(int n) {
    for (int i = 0; i < n; ++i) {
      SimTime now = SimTime::Micros(i * 250);  // 4000/s vs ~10/s capacity
      (void)engine.PushInput(in, T(i, i % 10), now);
      (void)engine.RunUntilQuiescent(now);
    }
  }
};

TEST(SemanticSheddingTest, KeepsHighValueTuples) {
  SemanticRig rig(SheddingPolicy::kSemantic);
  rig.Offer(4000);
  ASSERT_GT(rig.engine.load_shedder().total_dropped(), 2000u);
  ASSERT_FALSE(rig.delivered.empty());
  // Everything delivered after shedding kicked in is high-value; overall
  // the delivered mean must sit far above the offered mean (4.5).
  double sum = 0;
  for (int64_t b : rig.delivered) sum += static_cast<double>(b);
  EXPECT_GT(sum / static_cast<double>(rig.delivered.size()), 6.5);
}

TEST(SemanticSheddingTest, RandomSheddingHasNoValueBias) {
  SemanticRig rig(SheddingPolicy::kRandom);
  rig.Offer(4000);
  ASSERT_GT(rig.engine.load_shedder().total_dropped(), 2000u);
  ASSERT_FALSE(rig.delivered.empty());
  double sum = 0;
  for (int64_t b : rig.delivered) sum += static_cast<double>(b);
  double mean = sum / static_cast<double>(rig.delivered.size());
  EXPECT_GT(mean, 3.5);
  EXPECT_LT(mean, 5.5);  // ≈ the offered mean of 4.5
}

TEST(SemanticSheddingTest, ModelBuildResolvesValueFieldIndex) {
  // RebuildShedderModel must resolve "B" to its schema position so the
  // per-tuple path reads value(i) instead of scanning field names.
  SemanticRig rig(SheddingPolicy::kSemantic);
  const auto& inputs = rig.engine.load_shedder().inputs();
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0].value_field, "B");
  EXPECT_EQ(inputs[0].value_index,
            static_cast<int>(*SchemaAB()->IndexOf("B")));
}

TEST(SemanticSheddingTest, IndexPathMatchesNameScanDecisions) {
  // The resolved-index fast path must make exactly the same drop decisions
  // as the legacy name-scan path (semantic shedding output unchanged).
  auto make = [](int value_index) {
    LoadShedder::Options o;
    o.policy = SheddingPolicy::kSemantic;
    o.capacity_us_per_sec = 500.0;
    o.recompute_interval = SimDuration::Millis(50);
    auto shedder = std::make_unique<LoadShedder>(o);
    LoadShedder::InputInfo info;
    info.input = 0;
    info.downstream_cost_us = 50.0;
    info.value_field = "B";
    info.value_graph = *UtilityGraph::Make({{0.0, 0.0}, {9.0, 1.0}});
    info.value_index = value_index;
    shedder->SetInputs({info});
    return shedder;
  };
  auto by_index = make(static_cast<int>(*SchemaAB()->IndexOf("B")));
  auto by_name = make(-1);
  int divergences = 0;
  uint64_t drops = 0;
  for (int i = 0; i < 4000; ++i) {
    SimTime now = SimTime::Micros(i * 250);
    Tuple t = T(i, i % 10);
    bool a = by_index->ShouldDrop(0, t, now);
    bool b = by_name->ShouldDrop(0, t, now);
    if (a != b) divergences++;
    if (a) drops++;
  }
  EXPECT_EQ(divergences, 0);
  EXPECT_GT(drops, 1000u);  // the comparison actually exercised shedding
  EXPECT_EQ(by_index->total_dropped(), by_name->total_dropped());
}

TEST(SemanticSheddingTest, FallsBackToRandomWithoutValueGraph) {
  // No value QoS on the output: the semantic policy degrades gracefully.
  EngineOptions opts = SemanticRig::Opts(SheddingPolicy::kSemantic);
  AuroraEngine engine(opts);
  PortId in = *engine.AddInput("in", SchemaAB());
  PortId out = *engine.AddOutput("out");
  OperatorSpec work = FilterSpec(Predicate::True());
  work.SetParam("cost_us", Value(50.0));
  BoxId f = *engine.AddBox(work);
  ASSERT_OK(engine.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(f, 0)).status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(f, 0), Endpoint::OutputPort(out)).status());
  ASSERT_OK(engine.InitializeBoxes());
  ASSERT_OK(engine.SetOutputQoS(out, QoSSpec::Default()));
  engine.RebuildShedderModel();
  for (int i = 0; i < 3000; ++i) {
    SimTime now = SimTime::Micros(i * 250);
    ASSERT_OK(engine.PushInput(in, T(i, i % 10), now));
    ASSERT_OK(engine.RunUntilQuiescent(now));
  }
  EXPECT_GT(engine.load_shedder().total_dropped(), 1000u);
}

}  // namespace
}  // namespace aurora
