// Incrementally-maintained scheduler ready-queue: the heap-backed
// kLongestQueue / kMinOutputDistance policies must pick exactly the box the
// old linear scan would have picked (largest key, ties to the smallest box
// id), and O(1) HasWork must track every queue mutation path — push, choke,
// unchoke, train consumption, TakeArcQueue, DisconnectArc.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/aurora_engine.h"
#include "engine/threaded_engine.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

Tuple T(int64_t a, int64_t b) {
  return MakeTuple(SchemaAB(), {Value(a), Value(b)});
}

// N independent chains in_i -> filter_i -> out_i, so each box's scheduler
// key is exactly its input arc's queue length.
struct ParallelChains {
  AuroraEngine engine;
  std::vector<PortId> ins;
  std::vector<BoxId> boxes;
  std::vector<ArcId> arcs;  // in_i -> filter_i
  size_t delivered = 0;

  ParallelChains(EngineOptions opts, int n) : engine(opts) {
    for (int i = 0; i < n; ++i) {
      std::string tag = std::to_string(i);
      ins.push_back(*engine.AddInput("in" + tag, SchemaAB()));
      PortId out = *engine.AddOutput("out" + tag);
      boxes.push_back(*engine.AddBox(FilterSpec(Predicate::True())));
      arcs.push_back(*engine.Connect(Endpoint::InputPort(ins[i]),
                                     Endpoint::BoxPort(boxes[i], 0)));
      AURORA_CHECK(engine.Connect(Endpoint::BoxPort(boxes[i], 0),
                                  Endpoint::OutputPort(out)).ok());
      engine.SetOutputCallback(out,
                               [this](const Tuple&, SimTime) { delivered++; });
    }
    AURORA_CHECK(engine.InitializeBoxes().ok());
  }
};

TEST(ReadyQueueTest, LongestQueueMatchesLinearScanOracle) {
  EngineOptions opts;
  opts.scheduler = SchedulerPolicy::kLongestQueue;
  opts.train_size = 3;
  ParallelChains p(opts, 4);
  const size_t pushes[4] = {5, 9, 2, 7};
  size_t total = 0;
  for (int i = 0; i < 4; ++i) {
    for (size_t k = 0; k < pushes[i]; ++k) {
      ASSERT_OK(p.engine.PushInput(p.ins[i], T(i, k), SimTime()));
      total++;
    }
  }

  int steps = 0;
  while (p.engine.HasWork()) {
    ASSERT_LT(steps++, 100) << "scheduler failed to drain";
    // Oracle: the old linear scan — largest queue wins, strict comparison
    // keeps ties on the first (smallest-id) box.
    std::vector<size_t> before(p.arcs.size());
    int best = -1;
    for (size_t i = 0; i < p.arcs.size(); ++i) {
      before[i] = p.engine.ArcQueueSize(p.arcs[i]);
      if (before[i] > 0 && (best < 0 || before[i] > before[best])) {
        best = static_cast<int>(i);
      }
    }
    ASSERT_GE(best, 0);
    ASSERT_OK_AND_ASSIGN(double cost, p.engine.RunOneStep(SimTime()));
    EXPECT_GT(cost, 0.0);
    for (size_t i = 0; i < p.arcs.size(); ++i) {
      size_t expected =
          static_cast<int>(i) == best
              ? before[i] - std::min(before[i], static_cast<size_t>(3))
              : before[i];
      EXPECT_EQ(p.engine.ArcQueueSize(p.arcs[i]), expected)
          << "chain " << i << " at step " << steps;
    }
  }
  EXPECT_EQ(p.delivered, total);
  ASSERT_OK_AND_ASSIGN(double idle, p.engine.RunOneStep(SimTime()));
  EXPECT_EQ(idle, 0.0);
}

TEST(ReadyQueueTest, LongestQueueTieBreaksToSmallestBoxId) {
  EngineOptions opts;
  opts.scheduler = SchedulerPolicy::kLongestQueue;
  opts.train_size = 4;
  ParallelChains p(opts, 3);
  // Push the chains in reverse so insertion order can't mask an id-order
  // bug; all queues end up equal.
  for (int i = 2; i >= 0; --i) {
    for (int k = 0; k < 4; ++k) {
      ASSERT_OK(p.engine.PushInput(p.ins[i], T(i, k), SimTime()));
    }
  }
  ASSERT_OK(p.engine.RunOneStep(SimTime()).status());
  EXPECT_EQ(p.engine.ArcQueueSize(p.arcs[0]), 0u);  // smallest id went first
  EXPECT_EQ(p.engine.ArcQueueSize(p.arcs[1]), 4u);
  EXPECT_EQ(p.engine.ArcQueueSize(p.arcs[2]), 4u);
  ASSERT_OK(p.engine.RunOneStep(SimTime()).status());
  EXPECT_EQ(p.engine.ArcQueueSize(p.arcs[1]), 0u);
  EXPECT_EQ(p.engine.ArcQueueSize(p.arcs[2]), 4u);
}

TEST(ReadyQueueTest, MinOutputDistancePrefersBoxNearestOutput) {
  EngineOptions opts;
  opts.scheduler = SchedulerPolicy::kMinOutputDistance;
  opts.train_size = 1;
  AuroraEngine engine(opts);
  PortId in = *engine.AddInput("in", SchemaAB());
  PortId out = *engine.AddOutput("out");
  BoxId f1 = *engine.AddBox(FilterSpec(Predicate::True()));
  BoxId f2 = *engine.AddBox(FilterSpec(Predicate::True()));
  BoxId f3 = *engine.AddBox(FilterSpec(Predicate::True()));
  ArcId a1 = *engine.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(f1, 0));
  ArcId a2 =
      *engine.Connect(Endpoint::BoxPort(f1, 0), Endpoint::BoxPort(f2, 0));
  ArcId a3 =
      *engine.Connect(Endpoint::BoxPort(f2, 0), Endpoint::BoxPort(f3, 0));
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(f3, 0), Endpoint::OutputPort(out))
                .status());
  ASSERT_OK(engine.InitializeBoxes());
  size_t delivered = 0;
  engine.SetOutputCallback(out, [&](const Tuple&, SimTime) { delivered++; });

  // Seed the head and the tail of the chain; the tail box (distance 1) must
  // outrank the head box (distance 3).
  ASSERT_OK(engine.EnqueueOnArc(a1, T(1, 1), SimTime()));
  ASSERT_OK(engine.EnqueueOnArc(a3, T(2, 2), SimTime()));
  ASSERT_OK(engine.RunOneStep(SimTime()).status());
  EXPECT_EQ(engine.ArcQueueSize(a3), 0u);
  EXPECT_EQ(engine.ArcQueueSize(a1), 1u);
  EXPECT_EQ(delivered, 1u);

  // Remaining tuple drains head-to-tail; the engine must quiesce with both
  // tuples delivered and no phantom readiness left behind.
  ASSERT_OK(engine.RunUntilQuiescent(SimTime()));
  EXPECT_EQ(engine.ArcQueueSize(a1), 0u);
  EXPECT_EQ(engine.ArcQueueSize(a2), 0u);
  EXPECT_EQ(engine.ArcQueueSize(a3), 0u);
  EXPECT_EQ(delivered, 2u);
  EXPECT_FALSE(engine.HasWork());
}

TEST(ReadyQueueTest, HasWorkTracksChokeAndUnchoke) {
  ParallelChains p(EngineOptions{}, 1);
  ArcId a = p.arcs[0];

  // Already-queued tuples still drain through a choked arc, so the box
  // stays ready.
  ASSERT_OK(p.engine.PushInput(p.ins[0], T(1, 1), SimTime()));
  ASSERT_OK(p.engine.ChokeArc(a));
  EXPECT_TRUE(p.engine.HasWork());
  ASSERT_OK(p.engine.RunUntilQuiescent(SimTime()));
  EXPECT_EQ(p.delivered, 1u);

  // New arrivals on a choked arc go to the hold buffer: not consumable,
  // so HasWork must be false until unchoke re-enqueues them.
  ASSERT_OK(p.engine.PushInput(p.ins[0], T(2, 2), SimTime()));
  EXPECT_FALSE(p.engine.HasWork());
  EXPECT_EQ(p.engine.HeldTupleCount(a), 1u);
  ASSERT_OK(p.engine.UnchokeArc(a));
  EXPECT_TRUE(p.engine.HasWork());
  ASSERT_OK(p.engine.RunUntilQuiescent(SimTime()));
  EXPECT_EQ(p.delivered, 2u);
  EXPECT_FALSE(p.engine.HasWork());
}

TEST(ReadyQueueTest, TakeArcQueueAndDisconnectClearReadiness) {
  ParallelChains p(EngineOptions{}, 1);
  ArcId a = p.arcs[0];
  for (int k = 0; k < 3; ++k) {
    ASSERT_OK(p.engine.PushInput(p.ins[0], T(1, k), SimTime()));
  }
  EXPECT_TRUE(p.engine.HasWork());
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> taken, p.engine.TakeArcQueue(a));
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_FALSE(p.engine.HasWork());
  ASSERT_OK(p.engine.DisconnectArc(a));
  EXPECT_FALSE(p.engine.HasWork());
  ASSERT_OK_AND_ASSIGN(double cost, p.engine.RunOneStep(SimTime()));
  EXPECT_EQ(cost, 0.0);
  EXPECT_EQ(p.delivered, 0u);
}

// Interleaved pushes and steps churn the lazy-invalidation heap (every push
// bumps the box's generation); nothing may be lost or double-scheduled.
TEST(ReadyQueueTest, InterleavedPushAndStepDeliversEverything) {
  EngineOptions opts;
  opts.scheduler = SchedulerPolicy::kLongestQueue;
  opts.train_size = 2;
  ParallelChains p(opts, 2);
  size_t total = 0;
  for (int r = 0; r < 200; ++r) {
    int chain = r % 2;
    int burst = r % 3 + 1;
    for (int k = 0; k < burst; ++k) {
      ASSERT_OK(p.engine.PushInput(p.ins[chain], T(chain, r), SimTime()));
      total++;
    }
    if (r % 4 != 3) {  // let queues build up sometimes
      ASSERT_OK(p.engine.RunOneStep(SimTime()).status());
    }
  }
  ASSERT_OK(p.engine.RunUntilQuiescent(SimTime()));
  EXPECT_EQ(p.delivered, total);
  EXPECT_FALSE(p.engine.HasWork());
  EXPECT_EQ(p.engine.TotalQueuedTuples(), 0u);
}

// The threaded runtime's version of the same invariant: an ingest thread
// pushes irregular bursts into a wide network while four workers run (and
// steal) concurrently. Per-arc FIFO plus exactly-once consumption means
// every chain must end with exactly its own rows, in push order, no matter
// how activations interleave or migrate between workers.
TEST(ReadyQueueTest, CrossThreadInterleavedEnqueueAndStealOracle) {
  const int kChains = 6;
  ThreadedEngineOptions topts;
  topts.workers = 4;
  topts.train_size = 3;   // small trains force frequent re-queuing
  topts.ring_capacity = 8;  // small rings force the help-on-full path
  ThreadedEngine engine(topts);
  std::vector<PortId> ins;
  std::vector<std::vector<std::string>> rows(kChains);
  for (int i = 0; i < kChains; ++i) {
    std::string tag = std::to_string(i);
    ins.push_back(*engine.AddInput("in" + tag, SchemaAB()));
    PortId out = *engine.AddOutput("out" + tag);
    BoxId f = *engine.AddBox(FilterSpec(Predicate::True()));
    ASSERT_OK(engine.Connect(Endpoint::InputPort(ins[i]),
                             Endpoint::BoxPort(f, 0)).status());
    ASSERT_OK(engine.Connect(Endpoint::BoxPort(f, 0),
                             Endpoint::OutputPort(out)).status());
    engine.SetOutputCallback(out, [&rows, i](const Tuple& t, SimTime) {
      rows[i].push_back(t.value(0).ToString() + "|" +
                        t.value(1).ToString());
    });
  }
  ASSERT_OK(engine.InitializeBoxes());
  ASSERT_OK(engine.Start());

  std::vector<std::vector<std::string>> expected(kChains);
  for (int r = 0; r < 400; ++r) {
    int chain = r % kChains;
    int burst = r % 3 + 1;
    for (int k = 0; k < burst; ++k) {
      Tuple t = MakeTuple(SchemaAB(), {Value(int64_t{r}), Value(int64_t{k})});
      t.set_timestamp(SimTime::Micros(r + 1));
      expected[chain].push_back(std::to_string(r) + "|" + std::to_string(k));
      ASSERT_OK(engine.PushInput(ins[chain], std::move(t), SimTime()));
    }
  }
  engine.WaitQuiescent();
  ASSERT_OK(engine.Stop());
  for (int i = 0; i < kChains; ++i) {
    EXPECT_EQ(rows[i], expected[i]) << "chain " << i;
  }
}

}  // namespace
}  // namespace aurora
