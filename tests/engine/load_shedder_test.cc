// Load shedding (§2.3, §7.1): drop probabilities under overload, policy
// differences between random and QoS-aware shedding.
#include <gtest/gtest.h>

#include "engine/aurora_engine.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

Tuple T(int64_t a, int64_t b) {
  return MakeTuple(SchemaAB(), {Value(a), Value(b)});
}

// Two inputs -> two filters -> two outputs. The "cheap" output tolerates
// loss (flat loss graph); the "precious" one does not.
struct TwoStreamEngine {
  static EngineOptions WithShedder(LoadShedder::Options shed) {
    EngineOptions opts;
    opts.shedder = shed;
    return opts;
  }

  AuroraEngine engine;
  PortId in_cheap = -1, in_precious = -1, out_cheap = -1, out_precious = -1;

  explicit TwoStreamEngine(LoadShedder::Options shed)
      : engine(WithShedder(shed)) {
    in_cheap = *engine.AddInput("cheap", SchemaAB());
    in_precious = *engine.AddInput("precious", SchemaAB());
    out_cheap = *engine.AddOutput("out_cheap");
    out_precious = *engine.AddOutput("out_precious");
    BoxId f1 = *engine.AddBox(FilterSpec(Predicate::True()));
    BoxId f2 = *engine.AddBox(FilterSpec(Predicate::True()));
    AURORA_CHECK(engine.Connect(Endpoint::InputPort(in_cheap),
                                Endpoint::BoxPort(f1, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::InputPort(in_precious),
                                Endpoint::BoxPort(f2, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(f1, 0),
                                Endpoint::OutputPort(out_cheap)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(f2, 0),
                                Endpoint::OutputPort(out_precious)).ok());
    AURORA_CHECK(engine.InitializeBoxes().ok());
    QoSSpec cheap;
    cheap.loss = *UtilityGraph::Make({{0.0, 0.8}, {1.0, 1.0}});  // tolerant
    QoSSpec precious;
    precious.loss = *UtilityGraph::Make({{0.0, 0.0}, {1.0, 1.0}});  // strict
    AURORA_CHECK(engine.SetOutputQoS(out_cheap, cheap).ok());
    AURORA_CHECK(engine.SetOutputQoS(out_precious, precious).ok());
    engine.RebuildShedderModel();
  }

  // Pushes `n` tuples per input over `duration`, interleaved.
  void Offer(int n, SimDuration duration) {
    for (int i = 0; i < n; ++i) {
      SimTime now = SimTime::Micros(duration.micros() * i / n);
      (void)engine.PushInput(in_cheap, T(i, 0), now);
      (void)engine.PushInput(in_precious, T(i, 1), now);
      (void)engine.RunUntilQuiescent(now);
    }
  }
};

LoadShedder::Options MakeOptions(SheddingPolicy policy, double capacity) {
  LoadShedder::Options o;
  o.policy = policy;
  o.capacity_us_per_sec = capacity;
  o.recompute_interval = SimDuration::Millis(50);
  return o;
}

TEST(LoadShedderTest, NoSheddingUnderLightLoad) {
  // 2000 tuples/s * 1us each << 1e6 us/s capacity.
  TwoStreamEngine e(MakeOptions(SheddingPolicy::kQoSAware, 1e6));
  e.Offer(1000, SimDuration::Seconds(1));
  EXPECT_EQ(e.engine.load_shedder().total_dropped(), 0u);
}

TEST(LoadShedderTest, RandomShedsUnderOverload) {
  // Tiny capacity: 200 us/s against ~2000 us/s offered.
  TwoStreamEngine e(MakeOptions(SheddingPolicy::kRandom, 200.0));
  e.Offer(1000, SimDuration::Seconds(1));
  uint64_t dropped = e.engine.load_shedder().total_dropped();
  EXPECT_GT(dropped, 500u);
  // Random shedding hits both streams roughly equally.
  double p_cheap = e.engine.load_shedder().drop_probability(e.in_cheap);
  double p_precious = e.engine.load_shedder().drop_probability(e.in_precious);
  EXPECT_NEAR(p_cheap, p_precious, 1e-9);
}

TEST(LoadShedderTest, QoSAwareShedsTolerantStreamFirst) {
  // Moderate overload: shedding the cheap stream alone suffices.
  TwoStreamEngine e(MakeOptions(SheddingPolicy::kQoSAware, 1200.0));
  e.Offer(2000, SimDuration::Seconds(1));
  double p_cheap = e.engine.load_shedder().drop_probability(e.in_cheap);
  double p_precious = e.engine.load_shedder().drop_probability(e.in_precious);
  // The loss-tolerant stream takes (nearly) all the shedding.
  EXPECT_GT(p_cheap, 0.3);
  EXPECT_LT(p_precious, p_cheap);
}

TEST(LoadShedderTest, DropsAttributedToDownstreamOutputs) {
  TwoStreamEngine e(MakeOptions(SheddingPolicy::kRandom, 200.0));
  e.Offer(1000, SimDuration::Seconds(1));
  const QoSMonitor& qos = e.engine.qos_monitor();
  EXPECT_GT(qos.Dropped(e.out_cheap) + qos.Dropped(e.out_precious), 0u);
  EXPECT_LT(qos.DeliveredFraction(e.out_cheap), 1.0);
}

TEST(LoadShedderTest, OfferedLoadEstimateTracksRate) {
  TwoStreamEngine e(MakeOptions(SheddingPolicy::kRandom, 1e6));
  e.Offer(5000, SimDuration::Seconds(1));
  // ~10000 tuples/s at 1us + downstream ≈ 1e4 us/s scale.
  EXPECT_GT(e.engine.load_shedder().offered_load(), 5e3);
}

}  // namespace
}  // namespace aurora
