// ThreadedEngine runtime: per-arc FIFO determinism on linear chains,
// fan-out delivery, help-on-full backpressure with tiny rings, stateful
// operators vs the single-threaded oracle, deferred operator errors, and
// the ring multi-push (TryPushN) edge cases chunked batch emission leans
// on: wraparound-spanning reserves, chunks larger than the ring, and a
// concurrent multi-push/pop oracle (run under TSan in CI).
#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/aurora_engine.h"
#include "engine/threaded_engine.h"
#include "stream/ring_buffer.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

Tuple T(int64_t a, int64_t b, int64_t ts_us) {
  Tuple t = MakeTuple(SchemaAB(), {Value(a), Value(b)});
  t.set_timestamp(SimTime::Micros(ts_us));
  return t;
}

std::string Row(const Tuple& t) {
  std::string row;
  for (size_t i = 0; i < t.num_values(); ++i) {
    if (i > 0) row += "|";
    row += t.value(i).ToString();
  }
  return row;
}

// in -> filter(B >= threshold) -> map(+S=A+B) -> out. A linear chain, so
// the output row sequence must be byte-identical at any worker count.
struct Chain {
  ThreadedEngine engine;
  PortId in, out;
  std::vector<std::string> rows;  // guarded by the output mutex (callback)

  explicit Chain(ThreadedEngineOptions opts, int64_t threshold = 10)
      : engine(opts), in(-1), out(-1) {
    in = *engine.AddInput("in", SchemaAB());
    out = *engine.AddOutput("out");
    BoxId f = *engine.AddBox(
        FilterSpec(Predicate::Compare("B", CompareOp::kGe, Value(threshold))));
    BoxId m = *engine.AddBox(
        MapSpec({{"A", Expr::FieldRef("A")},
                 {"B", Expr::FieldRef("B")},
                 {"S", Expr::Arith(ArithOp::kAdd, Expr::FieldRef("A"),
                                   Expr::FieldRef("B"))}}));
    AURORA_CHECK(engine.Connect(Endpoint::InputPort(in),
                                Endpoint::BoxPort(f, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(f, 0),
                                Endpoint::BoxPort(m, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(m, 0),
                                Endpoint::OutputPort(out)).ok());
    AURORA_CHECK(engine.InitializeBoxes().ok());
    engine.SetOutputCallback(out, [this](const Tuple& t, SimTime) {
      rows.push_back(Row(t));
    });
  }
};

std::vector<std::string> ExpectedChainRows(int n, int64_t threshold) {
  std::vector<std::string> expected;
  for (int i = 0; i < n; ++i) {
    int64_t a = i, b = i % 17;
    if (b < threshold) continue;
    expected.push_back(std::to_string(a) + "|" + std::to_string(b) + "|" +
                       std::to_string(a + b));
  }
  return expected;
}

TEST(ThreadedEngineTest, LinearChainIsExactAtEveryWorkerCount) {
  const int kN = 2000;
  const int64_t kThreshold = 10;
  std::vector<std::string> expected = ExpectedChainRows(kN, kThreshold);
  for (int workers : {1, 2, 4}) {
    ThreadedEngineOptions opts;
    opts.workers = workers;
    opts.train_size = 7;  // force many activations per box
    Chain c(opts, kThreshold);
    ASSERT_OK(c.engine.Start());
    for (int i = 0; i < kN; ++i) {
      ASSERT_OK(c.engine.PushInput(c.in, T(i, i % 17, i + 1), SimTime()));
    }
    c.engine.WaitQuiescent();
    ASSERT_OK(c.engine.Stop());
    EXPECT_EQ(c.rows, expected) << "workers=" << workers;
    EXPECT_EQ(c.engine.tuples_in(), static_cast<uint64_t>(kN));
    EXPECT_EQ(c.engine.delivered(c.out), expected.size());
    EXPECT_GT(c.engine.activations(), 0u);
  }
}

TEST(ThreadedEngineTest, WideFanOutDeliversEveryChainInOrder) {
  const int kChains = 8, kN = 500;
  ThreadedEngineOptions opts;
  opts.workers = 4;
  opts.train_size = 16;
  ThreadedEngine engine(opts);
  PortId in = *engine.AddInput("in", SchemaAB());
  std::vector<std::vector<std::string>> rows(kChains);
  std::vector<PortId> outs;
  for (int i = 0; i < kChains; ++i) {
    PortId out = *engine.AddOutput("out" + std::to_string(i));
    outs.push_back(out);
    BoxId f = *engine.AddBox(FilterSpec(Predicate::True()));
    ASSERT_OK(engine.Connect(Endpoint::InputPort(in),
                             Endpoint::BoxPort(f, 0)).status());
    ASSERT_OK(engine.Connect(Endpoint::BoxPort(f, 0),
                             Endpoint::OutputPort(out)).status());
    engine.SetOutputCallback(out, [&rows, i](const Tuple& t, SimTime) {
      rows[i].push_back(Row(t));
    });
  }
  ASSERT_OK(engine.InitializeBoxes());
  ASSERT_OK(engine.Start());

  // kChains independent single-box components over 4 workers: the LPT
  // partitioner must spread them across every worker.
  std::vector<bool> used(4, false);
  for (int b = 0; b < kChains; ++b) used[engine.partition_of(b)] = true;
  for (int w = 0; w < 4; ++w) EXPECT_TRUE(used[w]) << "idle worker " << w;

  for (int i = 0; i < kN; ++i) {
    ASSERT_OK(engine.PushInput(in, T(i, i, i + 1), SimTime()));
  }
  engine.WaitQuiescent();
  ASSERT_OK(engine.Stop());
  for (int i = 0; i < kChains; ++i) {
    ASSERT_EQ(rows[i].size(), static_cast<size_t>(kN)) << "chain " << i;
    for (int k = 0; k < kN; ++k) {
      ASSERT_EQ(rows[i][k], std::to_string(k) + "|" + std::to_string(k))
          << "chain " << i << " row " << k;
    }
    EXPECT_EQ(engine.delivered(outs[i]), static_cast<uint64_t>(kN));
  }
}

TEST(ThreadedEngineTest, TinyRingsBackpressureByHelpingNotDropping) {
  ThreadedEngineOptions opts;
  opts.workers = 2;
  opts.train_size = 4;
  opts.ring_capacity = 2;  // every burst overflows the arc rings
  Chain c(opts, /*threshold=*/0);
  ASSERT_OK(c.engine.Start());
  const int kN = 3000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_OK(c.engine.PushInput(c.in, T(i, i % 17, i + 1), SimTime()));
  }
  c.engine.WaitQuiescent();
  ASSERT_OK(c.engine.Stop());
  EXPECT_EQ(c.rows, ExpectedChainRows(kN, 0));
  // With capacity-2 rings and 3000 tuples the producer must have hit a full
  // ring and run the consumer inline.
  EXPECT_GT(c.engine.ring_full_events(), 0u);
}

TEST(ThreadedEngineTest, StatefulTumbleMatchesSingleThreadedOracle) {
  auto build_tumble = [](auto* engine) {
    OperatorSpec spec = TumbleSpec("sum", "B", {"A"});
    spec.SetParam("emit", Value("every_n"));
    spec.SetParam("n", Value(int64_t{3}));
    PortId in = *engine->AddInput("in", SchemaAB());
    PortId out = *engine->AddOutput("out");
    BoxId box = *engine->AddBox(spec);
    AURORA_CHECK(engine->Connect(Endpoint::InputPort(in),
                                 Endpoint::BoxPort(box, 0)).ok());
    AURORA_CHECK(engine->Connect(Endpoint::BoxPort(box, 0),
                                 Endpoint::OutputPort(out)).ok());
    AURORA_CHECK(engine->InitializeBoxes().ok());
    return std::make_pair(in, out);
  };

  const int kN = 1000;
  // Oracle: the single-threaded engine over the identical trace.
  AuroraEngine oracle;
  auto [oin, oout] = build_tumble(&oracle);
  std::vector<std::string> oracle_rows;
  oracle.SetOutputCallback(oout, [&](const Tuple& t, SimTime) {
    oracle_rows.push_back(Row(t));
  });
  SimTime now{};
  for (int i = 0; i < kN; ++i) {
    Tuple t = T(i % 5, i, i + 1);
    now = t.timestamp();
    ASSERT_OK(oracle.PushInput(oin, t, now));
  }
  ASSERT_OK(oracle.RunUntilQuiescent(now));
  ASSERT_FALSE(oracle_rows.empty());

  for (int workers : {1, 4}) {
    ThreadedEngineOptions opts;
    opts.workers = workers;
    opts.train_size = 5;
    ThreadedEngine engine(opts);
    auto [tin, tout] = build_tumble(&engine);
    std::vector<std::string> rows;
    engine.SetOutputCallback(tout, [&rows](const Tuple& t, SimTime) {
      rows.push_back(Row(t));
    });
    ASSERT_OK(engine.Start());
    for (int i = 0; i < kN; ++i) {
      Tuple t = T(i % 5, i, i + 1);
      ASSERT_OK(engine.PushInput(tin, t, t.timestamp()));
    }
    engine.WaitQuiescent();
    ASSERT_OK(engine.Stop());
    EXPECT_EQ(rows, oracle_rows) << "workers=" << workers;
  }
}

TEST(ThreadedEngineTest, ConcurrentPushersOnDistinctInputsAllDeliver) {
  // Two input ports, two disjoint chains, one pusher thread per port — the
  // documented concurrency contract (one thread at a time *per port*).
  ThreadedEngineOptions opts;
  opts.workers = 4;
  opts.train_size = 8;
  ThreadedEngine engine(opts);
  std::vector<PortId> ins, outs;
  std::vector<std::vector<std::string>> rows(2);
  for (int i = 0; i < 2; ++i) {
    ins.push_back(*engine.AddInput("in" + std::to_string(i), SchemaAB()));
    PortId out = *engine.AddOutput("out" + std::to_string(i));
    outs.push_back(out);
    BoxId f = *engine.AddBox(FilterSpec(Predicate::True()));
    ASSERT_OK(engine.Connect(Endpoint::InputPort(ins[i]),
                             Endpoint::BoxPort(f, 0)).status());
    ASSERT_OK(engine.Connect(Endpoint::BoxPort(f, 0),
                             Endpoint::OutputPort(out)).status());
    engine.SetOutputCallback(out, [&rows, i](const Tuple& t, SimTime) {
      rows[i].push_back(Row(t));
    });
  }
  ASSERT_OK(engine.InitializeBoxes());
  ASSERT_OK(engine.Start());

  const int kN = 2000;
  std::vector<std::thread> pushers;
  for (int p = 0; p < 2; ++p) {
    pushers.emplace_back([&, p] {
      for (int i = 0; i < kN; ++i) {
        Status st = engine.PushInput(ins[p], T(p, i, i + 1), SimTime());
        AURORA_CHECK(st.ok()) << st.ToString();
      }
    });
  }
  for (std::thread& t : pushers) t.join();
  engine.WaitQuiescent();
  ASSERT_OK(engine.Stop());
  for (int p = 0; p < 2; ++p) {
    ASSERT_EQ(rows[p].size(), static_cast<size_t>(kN)) << "port " << p;
    for (int k = 0; k < kN; ++k) {
      ASSERT_EQ(rows[p][k], std::to_string(p) + "|" + std::to_string(k));
    }
  }
  EXPECT_EQ(engine.tuples_in(), static_cast<uint64_t>(2 * kN));
}

// TryPushN where the reserved run crosses the physical end of the slot
// array: slot addressing is (tail + i) & mask, so the published run must
// come back out in order with no special casing at the wrap point.
TEST(RingMultiPushTest, ReserveSpansWraparound) {
  BoundedRing<int64_t> ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  // Advance head and tail to 6 so the next multi-push straddles slot 7 -> 0.
  for (int64_t i = 0; i < 6; ++i) {
    int64_t v = i;
    ASSERT_TRUE(ring.TryPush(v));
  }
  int64_t out;
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(ring.TryPop(&out));
  ASSERT_TRUE(ring.EmptyApprox());

  int64_t chunk[5] = {100, 101, 102, 103, 104};
  ASSERT_EQ(ring.TryPushN(chunk, 5), 5u);  // slots 6,7,0,1,2
  for (int64_t want = 100; want <= 104; ++want) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, want);
  }
  EXPECT_FALSE(ring.TryPop(&out));
}

// A chunk larger than the whole ring publishes exactly the available room
// and leaves the tail of the span untouched for the caller to retry (the
// engine helps the consumer between retries).
TEST(RingMultiPushTest, ChunkLargerThanCapacityPublishesPartially) {
  BoundedRing<int64_t> ring(4);
  ASSERT_EQ(ring.capacity(), 4u);
  int64_t chunk[11];
  for (int64_t i = 0; i < 11; ++i) chunk[i] = i;
  ASSERT_EQ(ring.TryPushN(chunk, 11), 4u);  // room = capacity
  ASSERT_EQ(ring.TryPushN(chunk + 4, 7), 0u);  // full: nothing consumed
  int64_t out;
  for (int64_t want = 0; want < 4; ++want) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, want);
  }
  // Drained: the rest of the span (untouched by the failed push) goes in.
  ASSERT_EQ(ring.TryPushN(chunk + 4, 7), 4u);
  for (int64_t want = 4; want < 8; ++want) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, want);
  }
}

// Concurrent multi-push vs pop oracle: one producer publishing variable-size
// chunks, one consumer popping. The consumer must observe exactly the
// sequence 0..kN-1 — any torn publish, lost slot, or reorder breaks the
// oracle. CI runs this under TSan to certify the reserve-n/publish-once
// memory ordering.
TEST(RingMultiPushTest, ConcurrentMultiPushPopOracle) {
  BoundedRing<int64_t> ring(16);
  const int64_t kN = 200000;
  std::thread producer([&ring] {
    int64_t chunk[13];
    int64_t next = 0;
    while (next < kN) {
      size_t n = static_cast<size_t>((next % 13) + 1);
      if (next + static_cast<int64_t>(n) > kN) {
        n = static_cast<size_t>(kN - next);
      }
      for (size_t i = 0; i < n; ++i) chunk[i] = next + static_cast<int64_t>(i);
      size_t done = 0;
      while (done < n) {
        done += ring.TryPushN(chunk + done, n - done);
      }
      next += static_cast<int64_t>(n);
    }
  });
  int64_t got = 0;
  while (got < kN) {
    int64_t v;
    if (ring.TryPop(&v)) {
      ASSERT_EQ(v, got);
      ++got;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.EmptyApprox());
}

// Engine-level: batch_size 64 over capacity-2 rings makes every chunked
// emission larger than the ring. The chunk must degrade to repeated partial
// publishes with help-on-full between them — exact output, no deadlock.
TEST(ThreadedEngineTest, BatchedChunkLargerThanRingHelpsNotDeadlocks) {
  ThreadedEngineOptions opts;
  opts.workers = 2;
  opts.train_size = 64;
  opts.batch_size = 64;
  opts.ring_capacity = 2;
  Chain c(opts, /*threshold=*/0);
  ASSERT_OK(c.engine.Start());
  const int kN = 3000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_OK(c.engine.PushInput(c.in, T(i, i % 17, i + 1), SimTime()));
  }
  c.engine.WaitQuiescent();
  ASSERT_OK(c.engine.Stop());
  EXPECT_EQ(c.rows, ExpectedChainRows(kN, 0));
  EXPECT_GT(c.engine.ring_full_events(), 0u);
}

// Batched chunked emission under stealing workers stays byte-identical to
// the scalar expectation on a linear chain (the determinism contract is
// batch- and thread-invariant). Small rings force concurrent multi-push,
// help claims, and steals to interleave; CI runs this under TSan too.
TEST(ThreadedEngineTest, BatchedEmissionExactUnderStealingWorkers) {
  const int kN = 2000;
  const int64_t kThreshold = 10;
  std::vector<std::string> expected = ExpectedChainRows(kN, kThreshold);
  for (int workers : {1, 2, 4}) {
    ThreadedEngineOptions opts;
    opts.workers = workers;
    opts.train_size = 16;
    opts.batch_size = 8;
    opts.ring_capacity = 8;
    Chain c(opts, kThreshold);
    ASSERT_OK(c.engine.Start());
    for (int i = 0; i < kN; ++i) {
      ASSERT_OK(c.engine.PushInput(c.in, T(i, i % 17, i + 1), SimTime()));
    }
    c.engine.WaitQuiescent();
    ASSERT_OK(c.engine.Stop());
    EXPECT_EQ(c.rows, expected) << "workers=" << workers;
    EXPECT_EQ(c.engine.delivered(c.out), expected.size());
  }
}

TEST(ThreadedEngineTest, StartRejectsUninitializedBoxes) {
  ThreadedEngine engine;
  ASSERT_OK(engine.AddInput("in", SchemaAB()).status());
  // The filter's input is never connected, so its schema can't propagate
  // and Start's own InitializeBoxes() pass must refuse to launch.
  ASSERT_OK(engine.AddBox(FilterSpec(Predicate::True())).status());
  EXPECT_FALSE(engine.Start().ok());
}

}  // namespace
}  // namespace aurora
