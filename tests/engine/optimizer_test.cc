// Network re-optimization (§2.3): filter pushdown over Map and Union,
// selectivity-ordered filter chains — and the CPU savings they buy.
#include <gtest/gtest.h>

#include "engine/optimizer.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::SchemaAB;

Tuple T(int64_t a, int64_t b) {
  return MakeTuple(SchemaAB(), {Value(a), Value(b)});
}

OperatorSpec IdentityMapSpec(double cost_us = 50.0) {
  OperatorSpec spec = MapSpec(
      {{"A", Expr::FieldRef("A")}, {"B", Expr::FieldRef("B")}});
  spec.SetParam("cost_us", Value(cost_us));
  return spec;
}

TEST(OptimizerTest, PushesFilterAheadOfIdentityMap) {
  AuroraEngine engine;
  PortId in = *engine.AddInput("in", SchemaAB());
  PortId out = *engine.AddOutput("out");
  BoxId map = *engine.AddBox(IdentityMapSpec());
  BoxId filter = *engine.AddBox(
      FilterSpec(Predicate::Compare("B", CompareOp::kLt, Value(2))));
  ASSERT_OK(engine.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(map, 0)).status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(map, 0), Endpoint::BoxPort(filter, 0)).status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(filter, 0), Endpoint::OutputPort(out)).status());
  ASSERT_OK(engine.InitializeBoxes());

  NetworkOptimizer optimizer(&engine);
  ASSERT_OK_AND_ASSIGN(int changes, optimizer.Optimize());
  EXPECT_EQ(changes, 1);
  EXPECT_EQ(optimizer.map_pushdowns(), 1u);

  // Semantics preserved; the expensive map now only sees passing tuples.
  std::vector<Tuple> got;
  engine.SetOutputCallback(out, [&](const Tuple& t, SimTime) { got.push_back(t); });
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(engine.PushInput(in, T(i, i % 5), SimTime()));
  }
  ASSERT_OK(engine.RunUntilQuiescent(SimTime()));
  ASSERT_EQ(got.size(), 4u);  // B in {0,1}: i%5 < 2
  ASSERT_OK_AND_ASSIGN(Operator * map_op, engine.BoxOp(map));
  EXPECT_EQ(map_op->tuples_in(), 4u);  // only survivors reach the map
}

TEST(OptimizerTest, MapPushdownSavesCpu) {
  auto run = [](bool optimize) {
    AuroraEngine engine;
    PortId in = *engine.AddInput("in", SchemaAB());
    PortId out = *engine.AddOutput("out");
    BoxId map = *engine.AddBox(IdentityMapSpec(100.0));
    BoxId filter = *engine.AddBox(
        FilterSpec(Predicate::Compare("B", CompareOp::kLt, Value(1))));
    AURORA_CHECK(engine.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(map, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(map, 0), Endpoint::BoxPort(filter, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(filter, 0), Endpoint::OutputPort(out)).ok());
    AURORA_CHECK(engine.InitializeBoxes().ok());
    if (optimize) {
      NetworkOptimizer opt(&engine);
      AURORA_CHECK(opt.Optimize().ok());
    }
    for (int i = 0; i < 200; ++i) {
      AURORA_CHECK(engine.PushInput(in, T(i, i % 10), SimTime()).ok());
    }
    AURORA_CHECK(engine.RunUntilQuiescent(SimTime()).ok());
    return engine.total_cpu_micros();
  };
  // 10% selectivity before a 100us map: ~10x less map work.
  EXPECT_LT(run(true), run(false) * 0.2);
}

TEST(OptimizerTest, DoesNotPushPastNonIdentityProjection) {
  AuroraEngine engine;
  PortId in = *engine.AddInput("in", SchemaAB());
  PortId out = *engine.AddOutput("out");
  // B is rewritten, so Filter(B < 2) must NOT move ahead of the map.
  BoxId map = *engine.AddBox(MapSpec(
      {{"A", Expr::FieldRef("A")},
       {"B", Expr::Arith(ArithOp::kMul, Expr::FieldRef("B"),
                         Expr::Constant(Value(2)))}}));
  BoxId filter = *engine.AddBox(
      FilterSpec(Predicate::Compare("B", CompareOp::kLt, Value(2))));
  ASSERT_OK(engine.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(map, 0)).status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(map, 0), Endpoint::BoxPort(filter, 0)).status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(filter, 0), Endpoint::OutputPort(out)).status());
  ASSERT_OK(engine.InitializeBoxes());
  NetworkOptimizer optimizer(&engine);
  ASSERT_OK_AND_ASSIGN(int changes, optimizer.Optimize());
  EXPECT_EQ(changes, 0);
  (void)filter;
}

TEST(OptimizerTest, ReplicatesFilterOntoUnionInputs) {
  AuroraEngine engine;
  PortId in1 = *engine.AddInput("in1", SchemaAB());
  PortId in2 = *engine.AddInput("in2", SchemaAB());
  PortId out = *engine.AddOutput("out");
  BoxId u = *engine.AddBox(UnionSpec(2));
  BoxId f = *engine.AddBox(
      FilterSpec(Predicate::Compare("B", CompareOp::kGe, Value(5))));
  ASSERT_OK(engine.Connect(Endpoint::InputPort(in1), Endpoint::BoxPort(u, 0)).status());
  ASSERT_OK(engine.Connect(Endpoint::InputPort(in2), Endpoint::BoxPort(u, 1)).status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(u, 0), Endpoint::BoxPort(f, 0)).status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(f, 0), Endpoint::OutputPort(out)).status());
  ASSERT_OK(engine.InitializeBoxes());
  NetworkOptimizer optimizer(&engine);
  ASSERT_OK_AND_ASSIGN(int changes, optimizer.Optimize());
  EXPECT_EQ(changes, 1);
  EXPECT_EQ(optimizer.union_pushdowns(), 1u);
  // Now three filter instances feed/are fed by the union... two copies.
  EXPECT_EQ(engine.num_boxes(), 3u);  // union + 2 filter copies

  std::vector<Tuple> got;
  engine.SetOutputCallback(out, [&](const Tuple& t, SimTime) { got.push_back(t); });
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(engine.PushInput(i % 2 ? in1 : in2, T(i, i), SimTime()));
  }
  ASSERT_OK(engine.RunUntilQuiescent(SimTime()));
  EXPECT_EQ(got.size(), 5u);  // B >= 5
}

TEST(OptimizerTest, ReordersFiltersBySelectivity) {
  AuroraEngine engine;
  PortId in = *engine.AddInput("in", SchemaAB());
  PortId out = *engine.AddOutput("out");
  // F1 passes 90%, F2 passes 10% — F2 should run first.
  BoxId f1 = *engine.AddBox(
      FilterSpec(Predicate::Compare("B", CompareOp::kLt, Value(90))));
  BoxId f2 = *engine.AddBox(
      FilterSpec(Predicate::Compare("B", CompareOp::kLt, Value(10))));
  ASSERT_OK(engine.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(f1, 0)).status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(f1, 0), Endpoint::BoxPort(f2, 0)).status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(f2, 0), Endpoint::OutputPort(out)).status());
  ASSERT_OK(engine.InitializeBoxes());

  // No evidence yet: the optimizer must not act on guesses.
  NetworkOptimizer optimizer(&engine);
  ASSERT_OK_AND_ASSIGN(int premature, optimizer.Optimize());
  EXPECT_EQ(premature, 0);

  // Gather statistics, then optimize at a quiescent point.
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(engine.PushInput(in, T(i, i % 100), SimTime()));
  }
  ASSERT_OK(engine.RunUntilQuiescent(SimTime()));
  ASSERT_OK_AND_ASSIGN(int changes, optimizer.Optimize());
  EXPECT_EQ(changes, 1);
  EXPECT_EQ(optimizer.filter_reorders(), 1u);
  // The selective filter now feeds the permissive one.
  ASSERT_OK_AND_ASSIGN(ArcId arc, engine.FindArcInto(f1, 0));
  EXPECT_EQ(engine.ArcFrom(arc).id, f2);
  // Stable: a second pass does nothing.
  ASSERT_OK_AND_ASSIGN(int again, optimizer.Optimize());
  EXPECT_EQ(again, 0);

  // Semantics unchanged.
  std::vector<Tuple> got;
  engine.SetOutputCallback(out, [&](const Tuple& t, SimTime) { got.push_back(t); });
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(engine.PushInput(in, T(i, i), SimTime()));
  }
  ASSERT_OK(engine.RunUntilQuiescent(SimTime()));
  EXPECT_EQ(got.size(), 10u);
}

TEST(OptimizerTest, SkipsWhenQueuesAreBusy) {
  AuroraEngine engine;
  PortId in = *engine.AddInput("in", SchemaAB());
  PortId out = *engine.AddOutput("out");
  BoxId map = *engine.AddBox(IdentityMapSpec());
  BoxId filter = *engine.AddBox(
      FilterSpec(Predicate::Compare("B", CompareOp::kLt, Value(2))));
  ASSERT_OK(engine.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(map, 0)).status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(map, 0), Endpoint::BoxPort(filter, 0)).status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(filter, 0), Endpoint::OutputPort(out)).status());
  ASSERT_OK(engine.InitializeBoxes());
  // Tuples still queued: the transformation must wait for stabilization.
  ASSERT_OK(engine.PushInput(in, T(1, 1), SimTime()));
  NetworkOptimizer optimizer(&engine);
  ASSERT_OK_AND_ASSIGN(int busy_changes, optimizer.Optimize());
  EXPECT_EQ(busy_changes, 0);
  ASSERT_OK(engine.RunUntilQuiescent(SimTime()));
  ASSERT_OK_AND_ASSIGN(int idle_changes, optimizer.Optimize());
  EXPECT_EQ(idle_changes, 1);
}

}  // namespace
}  // namespace aurora
