// Single-node Aurora run-time (§2.3, Fig. 3): topology management, train
// scheduling, choke/hold, connection points, dynamic reconfiguration.
#include <gtest/gtest.h>

#include "engine/aurora_engine.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::PaperFigure2Stream;
using testing_util::SchemaAB;

Tuple T(int64_t a, int64_t b) {
  return MakeTuple(SchemaAB(), {Value(a), Value(b)});
}

// input -> filter(B>=lo) -> tumble(cnt by A) -> output.
struct Pipeline {
  AuroraEngine engine;
  PortId in = -1, out = -1;
  BoxId filter = -1, tumble = -1;
  std::vector<Tuple> collected;

  explicit Pipeline(EngineOptions opts = {}, int64_t lo = 0) : engine(opts) {
    in = *engine.AddInput("in", SchemaAB());
    out = *engine.AddOutput("out");
    filter = *engine.AddBox(
        FilterSpec(Predicate::Compare("B", CompareOp::kGe, Value(lo))));
    tumble = *engine.AddBox(TumbleSpec("cnt", "B", {"A"}));
    AURORA_CHECK(engine.Connect(Endpoint::InputPort(in),
                                Endpoint::BoxPort(filter, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(filter, 0),
                                Endpoint::BoxPort(tumble, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(tumble, 0),
                                Endpoint::OutputPort(out)).ok());
    AURORA_CHECK(engine.InitializeBoxes().ok());
    engine.SetOutputCallback(out, [this](const Tuple& t, SimTime) {
      collected.push_back(t);
    });
  }
};

TEST(EngineTest, EndToEndPipeline) {
  Pipeline p;
  for (const Tuple& t : PaperFigure2Stream()) {
    ASSERT_OK(p.engine.PushInput(p.in, t, t.timestamp()));
  }
  ASSERT_OK(p.engine.RunUntilQuiescent(SimTime::Millis(10)));
  ASSERT_EQ(p.collected.size(), 2u);
  EXPECT_EQ(GetInt(p.collected[0], "Result"), 2);
  EXPECT_EQ(GetInt(p.collected[1], "Result"), 3);
  EXPECT_GT(p.engine.total_cpu_micros(), 0.0);
}

TEST(EngineTest, SchemaMismatchOnPushRejected) {
  Pipeline p;
  SchemaPtr other = Schema::Make({Field{"X", ValueType::kString}});
  Tuple t = MakeTuple(other, {Value("boom")});
  EXPECT_TRUE(p.engine.PushInput(p.in, t, SimTime()).IsInvalidArgument());
}

TEST(EngineTest, UnconnectedBoxInputFailsInit) {
  AuroraEngine engine;
  *engine.AddInput("in", SchemaAB());
  *engine.AddBox(UnionSpec(2));  // nothing wired
  EXPECT_TRUE(engine.InitializeBoxes().IsFailedPrecondition());
}

TEST(EngineTest, DuplicateInputArcRejected) {
  AuroraEngine engine;
  PortId in = *engine.AddInput("in", SchemaAB());
  BoxId f = *engine.AddBox(FilterSpec(Predicate::True()));
  ASSERT_OK(engine.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(f, 0))
                .status());
  EXPECT_TRUE(engine.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(f, 0))
                  .status()
                  .IsAlreadyExists());
}

TEST(EngineTest, FanOutCopiesTuples) {
  AuroraEngine engine;
  PortId in = *engine.AddInput("in", SchemaAB());
  PortId out1 = *engine.AddOutput("o1");
  PortId out2 = *engine.AddOutput("o2");
  ASSERT_OK(engine.Connect(Endpoint::InputPort(in),
                           Endpoint::OutputPort(out1)).status());
  ASSERT_OK(engine.Connect(Endpoint::InputPort(in),
                           Endpoint::OutputPort(out2)).status());
  int count1 = 0, count2 = 0;
  engine.SetOutputCallback(out1, [&](const Tuple&, SimTime) { ++count1; });
  engine.SetOutputCallback(out2, [&](const Tuple&, SimTime) { ++count2; });
  ASSERT_OK(engine.PushInput(in, T(1, 1), SimTime()));
  EXPECT_EQ(count1, 1);
  EXPECT_EQ(count2, 1);
}

TEST(EngineTest, ChokeHoldsNewArrivalsButDrainsQueue) {
  Pipeline p;
  ArcId arc = *p.engine.FindArcInto(p.filter, 0);
  ASSERT_OK(p.engine.PushInput(p.in, T(1, 1), SimTime()));
  ASSERT_OK(p.engine.ChokeArc(arc));
  ASSERT_OK(p.engine.PushInput(p.in, T(2, 2), SimTime()));
  EXPECT_EQ(p.engine.ArcQueueSize(arc), 1u);   // pre-choke tuple drains
  EXPECT_EQ(p.engine.HeldTupleCount(arc), 1u); // post-choke tuple held
  ASSERT_OK(p.engine.RunUntilQuiescent(SimTime()));
  EXPECT_EQ(p.engine.ArcQueueSize(arc), 0u);
  // Unchoke releases the held tuple.
  ASSERT_OK(p.engine.UnchokeArc(arc));
  EXPECT_EQ(p.engine.ArcQueueSize(arc), 1u);
  EXPECT_EQ(p.engine.HeldTupleCount(arc), 0u);
}

TEST(EngineTest, ConnectionPointRecordsAndServesAdHocQueries) {
  Pipeline p;
  ArcId arc = *p.engine.FindArcInto(p.tumble, 0);
  RetentionPolicy policy;
  policy.max_tuples = 100;
  ASSERT_OK(p.engine.MakeConnectionPoint(arc, "cp", policy));
  for (const Tuple& t : PaperFigure2Stream()) {
    ASSERT_OK(p.engine.PushInput(p.in, t, t.timestamp()));
  }
  ASSERT_OK(p.engine.RunUntilQuiescent(SimTime::Millis(10)));
  ASSERT_OK_AND_ASSIGN(ConnectionPoint * cp, p.engine.GetConnectionPoint("cp"));
  EXPECT_EQ(cp->history_size(), 7u);
  int matched = 0;
  cp->QueryHistory([](const Tuple& t) { return t.Get("A").AsInt() == 2; },
                   [&](const Tuple&) { ++matched; });
  EXPECT_EQ(matched, 3);
}

TEST(EngineTest, RemoveBoxLifecycle) {
  Pipeline p;
  // A fully-wired box cannot be removed...
  EXPECT_TRUE(p.engine.RemoveBox(p.filter).IsFailedPrecondition());
  // ...until its arcs are gone.
  ArcId in_arc = *p.engine.FindArcInto(p.filter, 0);
  ArcId out_arc = p.engine.ArcsFrom(Endpoint::BoxPort(p.filter, 0))[0];
  ASSERT_OK(p.engine.DisconnectArc(in_arc));
  ASSERT_OK(p.engine.DisconnectArc(out_arc));
  ASSERT_OK(p.engine.RemoveBox(p.filter));
  EXPECT_EQ(p.engine.num_boxes(), 1u);
}

TEST(EngineTest, ExtractAndAdoptKeepsOperatorState) {
  AuroraEngine a, b;
  PortId in = *a.AddInput("in", SchemaAB());
  PortId out = *a.AddOutput("out");
  BoxId t = *a.AddBox(TumbleSpec("cnt", "B", {"A"}));
  ASSERT_OK(a.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(t, 0)).status());
  ASSERT_OK(a.Connect(Endpoint::BoxPort(t, 0), Endpoint::OutputPort(out)).status());
  ASSERT_OK(a.InitializeBoxes());
  ASSERT_OK(a.PushInput(in, T(5, 1), SimTime()));
  ASSERT_OK(a.PushInput(in, T(5, 2), SimTime()));
  ASSERT_OK(a.RunUntilQuiescent(SimTime()));
  // Open window (A=5, 2 tuples) moves with the operator.
  ArcId in_arc = *a.FindArcInto(t, 0);
  ArcId out_arc = a.ArcsFrom(Endpoint::BoxPort(t, 0))[0];
  ASSERT_OK(a.DisconnectArc(in_arc));
  ASSERT_OK(a.DisconnectArc(out_arc));
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, a.ExtractBoxOperator(t));
  ASSERT_OK_AND_ASSIGN(BoxId t2, b.AdoptBoxOperator(std::move(op)));
  PortId in2 = *b.AddInput("in", SchemaAB());
  PortId out2 = *b.AddOutput("out");
  ASSERT_OK(b.Connect(Endpoint::InputPort(in2), Endpoint::BoxPort(t2, 0)).status());
  ASSERT_OK(b.Connect(Endpoint::BoxPort(t2, 0), Endpoint::OutputPort(out2)).status());
  std::vector<Tuple> got;
  b.SetOutputCallback(out2, [&](const Tuple& tp, SimTime) { got.push_back(tp); });
  ASSERT_OK(b.PushInput(in2, T(6, 0), SimTime()));  // closes the A=5 window
  ASSERT_OK(b.RunUntilQuiescent(SimTime()));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(GetInt(got[0], "A"), 5);
  EXPECT_EQ(GetInt(got[0], "Result"), 2);
}

TEST(EngineTest, AdoptRejectsSchemaMismatch) {
  AuroraEngine a, b;
  BoxId f = *a.AddBox(FilterSpec(Predicate::True()));
  PortId in = *a.AddInput("in", SchemaAB());
  ASSERT_OK(a.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(f, 0)).status());
  ASSERT_OK(a.InitializeBoxes());
  ArcId arc = *a.FindArcInto(f, 0);
  ASSERT_OK(a.DisconnectArc(arc));
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, a.ExtractBoxOperator(f));
  ASSERT_OK_AND_ASSIGN(BoxId f2, b.AdoptBoxOperator(std::move(op)));
  PortId bad = *b.AddInput("bad", Schema::Make({Field{"X", ValueType::kString}}));
  EXPECT_TRUE(b.Connect(Endpoint::InputPort(bad), Endpoint::BoxPort(f2, 0))
                  .status()
                  .IsInvalidArgument());
}

class SchedulerPolicyTest : public ::testing::TestWithParam<SchedulerPolicy> {};

TEST_P(SchedulerPolicyTest, AllPoliciesProcessEverything) {
  EngineOptions opts;
  opts.scheduler = GetParam();
  opts.train_size = 8;
  Pipeline p(opts);
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(p.engine.PushInput(p.in, T(i, i % 5), SimTime()));
  }
  ASSERT_OK(p.engine.RunUntilQuiescent(SimTime()));
  // 99 groups close (the last stays open), regardless of discipline.
  EXPECT_EQ(p.collected.size(), 99u);
  EXPECT_EQ(p.engine.TotalQueuedTuples(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SchedulerPolicyTest,
                         ::testing::Values(SchedulerPolicy::kRoundRobin,
                                           SchedulerPolicy::kLongestQueue,
                                           SchedulerPolicy::kMinOutputDistance,
                                           SchedulerPolicy::kTupleAtATime));

TEST(EngineTest, TrainDepthPushesTowardOutput) {
  EngineOptions deep;
  deep.train_depth = 4;
  Pipeline p(deep);
  for (const Tuple& t : PaperFigure2Stream()) {
    ASSERT_OK(p.engine.PushInput(p.in, t, t.timestamp()));
  }
  // A single step pushes the whole train through filter AND tumble.
  ASSERT_OK_AND_ASSIGN(double cost, p.engine.RunOneStep(SimTime::Millis(8)));
  EXPECT_GT(cost, 0.0);
  EXPECT_EQ(p.collected.size(), 2u);
}

TEST(EngineTest, QoSMonitorMeasuresLatency) {
  Pipeline p;
  ASSERT_OK(p.engine.SetOutputQoS(p.out, QoSSpec::Default()));
  for (const Tuple& t : PaperFigure2Stream()) {
    ASSERT_OK(p.engine.PushInput(p.in, t, t.timestamp()));
  }
  // Process 50ms after the last tuple was created.
  ASSERT_OK(p.engine.RunUntilQuiescent(SimTime::Millis(57)));
  EXPECT_EQ(p.engine.qos_monitor().Delivered(p.out), 2u);
  // Tuple #1 (created at 1ms) reached the output at 57ms → 56ms latency.
  EXPECT_GT(p.engine.qos_monitor().AvgLatencyMs(p.out), 40.0);
  // Default QoS gives full utility below 100ms.
  EXPECT_DOUBLE_EQ(p.engine.qos_monitor().CurrentUtility(p.out), 1.0);
}

TEST(EngineTest, StorageManagerSpillsUnderMemoryPressure) {
  EngineOptions opts;
  opts.memory_budget_bytes = 600;  // a handful of tuples
  Pipeline p(opts);
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(p.engine.PushInput(p.in, T(i, 0), SimTime()));
  }
  EXPECT_GT(p.engine.storage_manager().total_spilled_bytes(), 0u);
  // Everything still processes correctly (spilled tuples are readable).
  ASSERT_OK(p.engine.RunUntilQuiescent(SimTime()));
  EXPECT_EQ(p.collected.size(), 99u);
}

TEST(EngineTest, SpillReadsChargeExtraCpu) {
  EngineOptions opts;
  opts.memory_budget_bytes = 600;
  opts.spill_read_cost_us = 50.0;
  Pipeline spilled(opts);
  Pipeline unspilled;
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(spilled.engine.PushInput(spilled.in, T(i, 0), SimTime()));
    ASSERT_OK(unspilled.engine.PushInput(unspilled.in, T(i, 0), SimTime()));
  }
  ASSERT_OK(spilled.engine.RunUntilQuiescent(SimTime()));
  ASSERT_OK(unspilled.engine.RunUntilQuiescent(SimTime()));
  EXPECT_GT(spilled.engine.total_cpu_micros(),
            unspilled.engine.total_cpu_micros() * 1.5);
}

TEST(EngineTest, InferArcQoSShiftsLatencyGraph) {
  // Fig. 9: the QoS at an internal arc is the output QoS shifted left by
  // the downstream processing time.
  Pipeline p;
  QoSSpec out_spec;
  out_spec.latency = *UtilityGraph::Make({{100.0, 1.0}, {200.0, 0.0}});
  ASSERT_OK(p.engine.SetOutputQoS(p.out, out_spec));
  ArcId arc = *p.engine.FindArcInto(p.filter, 0);
  ASSERT_OK_AND_ASSIGN(QoSSpec inferred, p.engine.InferArcQoS(arc));
  // Downstream of that arc: filter (1us) + tumble (3us) => shift 0.004ms.
  double shift = 100.0 - inferred.latency.points()[0].x;
  EXPECT_NEAR(shift, 0.004, 1e-6);
  // After traffic, measured T_B (includes queueing) replaces the default.
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(p.engine.PushInput(p.in, T(i, 0), SimTime::Millis(i)));
  }
  ASSERT_OK(p.engine.RunUntilQuiescent(SimTime::Millis(60)));
  ASSERT_OK_AND_ASSIGN(QoSSpec measured, p.engine.InferArcQoS(arc));
  double measured_shift = 100.0 - measured.latency.points()[0].x;
  EXPECT_GT(measured_shift, shift);  // queueing time now included
}

TEST(EngineTest, DeferredOperatorErrorSurfaces) {
  AuroraEngine engine;
  PortId in = *engine.AddInput("in", SchemaAB());
  PortId out = *engine.AddOutput("out");
  // Map with division by a field that is zero → runtime error.
  BoxId m = *engine.AddBox(MapSpec(
      {{"Q", Expr::Arith(ArithOp::kDiv, Expr::FieldRef("A"),
                         Expr::FieldRef("B"))}}));
  ASSERT_OK(engine.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(m, 0)).status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(m, 0), Endpoint::OutputPort(out)).status());
  ASSERT_OK(engine.InitializeBoxes());
  ASSERT_OK(engine.PushInput(in, T(1, 0), SimTime()));
  Status st = engine.RunUntilQuiescent(SimTime());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

}  // namespace
}  // namespace aurora
