// QoS-slack scheduling (§2.3/§7.1): under backlog, the box serving the
// tightest-deadline output runs first, so the urgent output's latency
// stays inside its QoS graph while the relaxed one absorbs the delay.
#include <gtest/gtest.h>

#include "engine/aurora_engine.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

Tuple T(int64_t a, int64_t b) {
  return MakeTuple(SchemaAB(), {Value(a), Value(b)});
}

struct TwoDeadlineRig {
  AuroraEngine engine;
  PortId in_urgent = -1, in_relaxed = -1, out_urgent = -1, out_relaxed = -1;
  BoxId f_urgent = -1, f_relaxed = -1;

  explicit TwoDeadlineRig(SchedulerPolicy policy) : engine([&] {
    EngineOptions opts;
    opts.scheduler = policy;
    opts.train_size = 4;
    return opts;
  }()) {
    in_urgent = *engine.AddInput("urgent", SchemaAB());
    in_relaxed = *engine.AddInput("relaxed", SchemaAB());
    out_urgent = *engine.AddOutput("out_urgent");
    out_relaxed = *engine.AddOutput("out_relaxed");
    OperatorSpec work = FilterSpec(Predicate::True());
    work.SetParam("cost_us", Value(100.0));
    f_urgent = *engine.AddBox(work);
    f_relaxed = *engine.AddBox(work);
    AURORA_CHECK(engine.Connect(Endpoint::InputPort(in_urgent),
                                Endpoint::BoxPort(f_urgent, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::InputPort(in_relaxed),
                                Endpoint::BoxPort(f_relaxed, 0)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(f_urgent, 0),
                                Endpoint::OutputPort(out_urgent)).ok());
    AURORA_CHECK(engine.Connect(Endpoint::BoxPort(f_relaxed, 0),
                                Endpoint::OutputPort(out_relaxed)).ok());
    AURORA_CHECK(engine.InitializeBoxes().ok());
    QoSSpec urgent;  // deadline: 10ms
    urgent.latency = *UtilityGraph::Make({{5.0, 1.0}, {15.0, 0.0}});
    QoSSpec relaxed;  // deadline: 1s
    relaxed.latency = *UtilityGraph::Make({{500.0, 1.0}, {1500.0, 0.0}});
    AURORA_CHECK(engine.SetOutputQoS(out_urgent, urgent).ok());
    AURORA_CHECK(engine.SetOutputQoS(out_relaxed, relaxed).ok());
    engine.RefreshQoSDeadlines();
  }
};

TEST(QoSSchedulerTest, DeadlinesInferredPerBox) {
  TwoDeadlineRig rig(SchedulerPolicy::kQoSSlack);
  // Internal deadlines reflect the output graphs (CriticalX at 0.5: 10ms
  // and 1000ms, minus negligible box time).
  // Verified indirectly: the urgent box must be scheduled first below.
  SUCCEED();
}

TEST(QoSSchedulerTest, UrgentBoxRunsFirstUnderBacklog) {
  TwoDeadlineRig rig(SchedulerPolicy::kQoSSlack);
  // Backlog both boxes equally; tuples share the same age.
  SimTime t0;
  for (int i = 0; i < 8; ++i) {
    Tuple a = T(i, 0);
    a.set_timestamp(t0);
    ASSERT_OK(rig.engine.PushInput(rig.in_relaxed, a, t0));
    Tuple b = T(i, 0);
    b.set_timestamp(t0);
    ASSERT_OK(rig.engine.PushInput(rig.in_urgent, b, t0));
  }
  // One step at t=2ms: the urgent box must win despite equal queue length
  // (kLongestQueue or round-robin would be arbitrary/alternating).
  ASSERT_OK(rig.engine.RunOneStep(SimTime::Millis(2)).status());
  ASSERT_OK_AND_ASSIGN(Operator * urgent_op, rig.engine.BoxOp(rig.f_urgent));
  ASSERT_OK_AND_ASSIGN(Operator * relaxed_op, rig.engine.BoxOp(rig.f_relaxed));
  EXPECT_GT(urgent_op->tuples_in(), 0u);
  EXPECT_EQ(relaxed_op->tuples_in(), 0u);
}

TEST(QoSSchedulerTest, SlackOrderingBeatsRoundRobinOnUrgentLatency) {
  auto run = [](SchedulerPolicy policy) {
    TwoDeadlineRig rig(policy);
    // Sustained equal backlog, processed over time.
    for (int ms = 0; ms < 50; ++ms) {
      SimTime now = SimTime::Millis(ms);
      Tuple a = T(ms, 0);
      a.set_timestamp(now);
      (void)rig.engine.PushInput(rig.in_relaxed, a, now);
      Tuple b = T(ms, 0);
      b.set_timestamp(now);
      (void)rig.engine.PushInput(rig.in_urgent, b, now);
      // Limited CPU: only a couple of steps per ms.
      (void)rig.engine.RunOneStep(now);
    }
    (void)rig.engine.RunUntilQuiescent(SimTime::Millis(60));
    return rig.engine.qos_monitor().AvgLatencyMs(rig.out_urgent);
  };
  double slack_latency = run(SchedulerPolicy::kQoSSlack);
  double rr_latency = run(SchedulerPolicy::kRoundRobin);
  // The slack scheduler keeps the urgent output markedly fresher.
  EXPECT_LT(slack_latency, rr_latency * 0.8)
      << "slack=" << slack_latency << " rr=" << rr_latency;
}

TEST(QoSSchedulerTest, NoSpecsMeansEveryBoxIsEquallyLazy) {
  EngineOptions opts;
  opts.scheduler = SchedulerPolicy::kQoSSlack;
  AuroraEngine engine(opts);
  PortId in = *engine.AddInput("in", SchemaAB());
  PortId out = *engine.AddOutput("out");
  BoxId f = *engine.AddBox(FilterSpec(Predicate::True()));
  ASSERT_OK(engine.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(f, 0)).status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(f, 0), Endpoint::OutputPort(out)).status());
  ASSERT_OK(engine.InitializeBoxes());
  engine.RefreshQoSDeadlines();
  int count = 0;
  engine.SetOutputCallback(out, [&](const Tuple&, SimTime) { ++count; });
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(engine.PushInput(in, T(i, 0), SimTime()));
  }
  ASSERT_OK(engine.RunUntilQuiescent(SimTime()));
  EXPECT_EQ(count, 10);  // still processes everything
}

}  // namespace
}  // namespace aurora
