// Regression: QoSMonitor metric prefixes must derive from the owning
// node's scope, not process-global construction order. The old
// implementation numbered monitors with a static atomic, so the second
// federation built in a process saw "qos.2.", "qos.3.", ... and its
// metrics no longer lined up with the first run's names.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "distributed/aurora_star.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

std::vector<std::string> FederationPrefixes(int nodes) {
  Simulation sim;
  OverlayNetwork net(&sim);
  AuroraStarSystem system(&sim, &net, StarOptions{});
  std::vector<std::string> prefixes;
  for (int i = 0; i < nodes; ++i) {
    NodeOptions nopts;
    nopts.name = "n" + std::to_string(i);
    auto id = system.AddNode(nopts);
    AURORA_CHECK(id.ok()) << id.status().ToString();
    prefixes.push_back(system.node(*id).engine().qos_monitor().prefix());
  }
  return prefixes;
}

TEST(QoSPrefixTest, PrefixesAreScopeDerivedNotConstructionOrdered) {
  std::vector<std::string> first = FederationPrefixes(3);
  // A second federation in the same process must produce the identical
  // prefixes — under the old static counter it produced qos.3..qos.5..
  std::vector<std::string> second = FederationPrefixes(3);
  EXPECT_EQ(first, second);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(first[i], "qos.n" + std::to_string(i) + ".") << "node " << i;
  }
}

TEST(QoSPrefixTest, StandaloneEngineUsesLocalScope) {
  AuroraEngine engine;
  EXPECT_EQ(engine.qos_monitor().prefix(), "qos.local.");
}

}  // namespace
}  // namespace aurora
