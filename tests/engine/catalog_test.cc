// The intra-participant catalog (§4.1): schemas, streams with locations,
// operator definitions offered for remote definition, query pieces.
#include <gtest/gtest.h>

#include "engine/catalog.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

TEST(CatalogTest, SchemaLifecycle) {
  Catalog catalog;
  ASSERT_OK(catalog.DefineSchema("packets", SchemaAB()));
  EXPECT_TRUE(catalog.DefineSchema("packets", SchemaAB()).IsAlreadyExists());
  ASSERT_OK_AND_ASSIGN(SchemaPtr schema, catalog.GetSchema("packets"));
  EXPECT_TRUE(schema->Equals(*SchemaAB()));
  EXPECT_TRUE(catalog.GetSchema("nope").status().IsNotFound());
}

TEST(CatalogTest, StreamLocationsTrackLoadSharing) {
  Catalog catalog;
  ASSERT_OK(catalog.DefineStream(StreamInfo{"ticks", SchemaAB(), {0}}));
  // §4.2: "streams may be partitioned across several nodes for load
  // balancing ... the location information is always propagated".
  ASSERT_OK(catalog.SetStreamLocations("ticks", {1, 2}));
  ASSERT_OK_AND_ASSIGN(StreamInfo info, catalog.GetStream("ticks"));
  EXPECT_EQ(info.locations, (std::vector<NodeId>{1, 2}));
  EXPECT_TRUE(catalog.SetStreamLocations("nope", {}).IsNotFound());
}

TEST(CatalogTest, OperatorDefinitionsForRemoteDefinition) {
  Catalog catalog;
  ASSERT_OK(catalog.DefineOperator(
      "threshold", FilterSpec(Predicate::Compare("B", CompareOp::kGe,
                                                 Value(30)))));
  ASSERT_OK(catalog.DefineOperator("hourly", TumbleSpec("avg", "B", {"A"})));
  EXPECT_EQ(catalog.ListOperators().size(), 2u);
  ASSERT_OK_AND_ASSIGN(OperatorSpec spec, catalog.GetOperator("threshold"));
  EXPECT_EQ(spec.kind, "filter");
  // Definitions are instantiable.
  ASSERT_OK_AND_ASSIGN(OperatorPtr op, CreateOperator(spec));
  ASSERT_OK(op->Init({SchemaAB()}));
}

TEST(CatalogTest, QueryPieceBookkeeping) {
  Catalog catalog;
  QueryInfo info;
  info.name = "monitoring";
  info.pieces = {{0, {"filter1", "tumble1"}}, {1, {"join1"}}};
  ASSERT_OK(catalog.DefineQuery(info));
  ASSERT_OK_AND_ASSIGN(QueryInfo got, catalog.GetQuery("monitoring"));
  ASSERT_EQ(got.pieces.size(), 2u);
  EXPECT_EQ(got.pieces[0].node, 0);
  // Repartitioning rewrites the pieces.
  ASSERT_OK(catalog.SetQueryPieces(
      "monitoring", {{1, {"filter1", "tumble1", "join1"}}}));
  ASSERT_OK_AND_ASSIGN(QueryInfo moved, catalog.GetQuery("monitoring"));
  EXPECT_EQ(moved.pieces.size(), 1u);
  EXPECT_EQ(moved.pieces[0].node, 1);
}

}  // namespace
}  // namespace aurora
