#include "tuple/value.h"

#include <gtest/gtest.h>

namespace aurora {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
  EXPECT_TRUE(Value(true).AsBool());
  EXPECT_EQ(Value(static_cast<int64_t>(7)).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, NumericView) {
  EXPECT_DOUBLE_EQ(Value(3).AsNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(Value(3.5).AsNumeric(), 3.5);
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value(1).Compare(Value(2)), 0);
  EXPECT_EQ(Value(2).Compare(Value(2)), 0);
  EXPECT_GT(Value(3).Compare(Value(2)), 0);
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_LT(Value(false).Compare(Value(true)), 0);
}

TEST(ValueTest, CrossNumericComparison) {
  // int64 and double compare numerically.
  EXPECT_EQ(Value(2).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(2).Compare(Value(2.5)), 0);
  EXPECT_GT(Value(3).Compare(Value(2.5)), 0);
}

TEST(ValueTest, CrossTypeTotalOrder) {
  // null < bool < numeric < string.
  EXPECT_LT(Value::Null().Compare(Value(true)), 0);
  EXPECT_LT(Value(true).Compare(Value(0)), 0);
  EXPECT_LT(Value(99999).Compare(Value("a")), 0);
}

TEST(ValueTest, EqualIntAndDoubleHashAlike) {
  // Required so hash-partition split predicates route (A=2) and (A=2.0) to
  // the same machine.
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());
  EXPECT_NE(Value(2).Hash(), Value(3).Hash());
}

TEST(ValueTest, HashSpreadsStrings) {
  EXPECT_NE(Value("a").Hash(), Value("b").Hash());
  EXPECT_NE(Value("ab").Hash(), Value("ba").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "\"x\"");
}

TEST(ValueTest, WireSizeMatchesTypeFootprint) {
  EXPECT_EQ(Value::Null().WireSize(), 1u);
  EXPECT_EQ(Value(true).WireSize(), 2u);
  EXPECT_EQ(Value(7).WireSize(), 9u);
  EXPECT_EQ(Value(7.0).WireSize(), 9u);
  EXPECT_EQ(Value("abcd").WireSize(), 1u + 4u + 4u);
}

}  // namespace
}  // namespace aurora
