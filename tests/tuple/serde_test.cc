#include "tuple/serde.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::PaperFigure2Stream;
using testing_util::SchemaAB;

TEST(SerdeTest, PrimitiveRoundTrips) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU16(0x1234);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutI64(-42);
  enc.PutDouble(3.14159);
  enc.PutString("stream processing");

  Decoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetU8(), 0xAB);
  EXPECT_EQ(*dec.GetU16(), 0x1234);
  EXPECT_EQ(*dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*dec.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*dec.GetI64(), -42);
  EXPECT_DOUBLE_EQ(*dec.GetDouble(), 3.14159);
  EXPECT_EQ(*dec.GetString(), "stream processing");
  EXPECT_TRUE(dec.AtEnd());
}

TEST(SerdeTest, ValueRoundTripsAllTypes) {
  std::vector<Value> values = {Value::Null(), Value(true), Value(false),
                               Value(-7), Value(123456789.25), Value("abc")};
  Encoder enc;
  for (const auto& v : values) enc.PutValue(v);
  Decoder dec(enc.buffer());
  for (const auto& v : values) {
    ASSERT_OK_AND_ASSIGN(Value got, dec.GetValue());
    EXPECT_EQ(got, v);
    EXPECT_EQ(got.type(), v.type());
  }
}

TEST(SerdeTest, TupleRoundTripPreservesMetadata) {
  Tuple t = MakeTuple(SchemaAB(), {Value(1), Value(2)});
  t.set_timestamp(SimTime::Millis(123));
  t.set_seq(99);
  Encoder enc;
  enc.PutTuple(t);
  Decoder dec(enc.buffer());
  ASSERT_OK_AND_ASSIGN(Tuple got, dec.GetTuple(SchemaAB()));
  EXPECT_TRUE(got.ValuesEqual(t));
  EXPECT_EQ(got.timestamp(), SimTime::Millis(123));
  EXPECT_EQ(got.seq(), 99u);
}

TEST(SerdeTest, SchemaRoundTrip) {
  SchemaPtr schema = Schema::Make({Field{"id", ValueType::kInt64},
                                   Field{"name", ValueType::kString},
                                   Field{"score", ValueType::kDouble}});
  Encoder enc;
  enc.PutSchema(*schema);
  Decoder dec(enc.buffer());
  ASSERT_OK_AND_ASSIGN(SchemaPtr got, dec.GetSchema());
  EXPECT_TRUE(got->Equals(*schema));
}

TEST(SerdeTest, BatchRoundTrip) {
  std::vector<Tuple> tuples = PaperFigure2Stream();
  std::vector<uint8_t> bytes = SerializeTuples(tuples);
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> got,
                       DeserializeTuples(bytes, SchemaAB()));
  ASSERT_EQ(got.size(), tuples.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].ValuesEqual(tuples[i]));
    EXPECT_EQ(got[i].seq(), tuples[i].seq());
  }
}

TEST(SerdeTest, TruncatedBufferIsError) {
  std::vector<Tuple> tuples = PaperFigure2Stream();
  std::vector<uint8_t> bytes = SerializeTuples(tuples);
  bytes.resize(bytes.size() / 2);
  auto result = DeserializeTuples(bytes, SchemaAB());
  EXPECT_TRUE(result.status().IsOutOfRange()) << result.status().ToString();
}

TEST(SerdeTest, TrailingGarbageIsError) {
  std::vector<uint8_t> bytes = SerializeTuples(PaperFigure2Stream());
  bytes.push_back(0xFF);
  auto result = DeserializeTuples(bytes, SchemaAB());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(SerdeTest, BadValueTagIsError) {
  Encoder enc;
  enc.PutU8(200);  // not a ValueType
  Decoder dec(enc.buffer());
  EXPECT_TRUE(dec.GetValue().status().IsInvalidArgument());
}

TEST(SerdeTest, WireSizeMatchesEncodedSize) {
  for (const Tuple& t : PaperFigure2Stream()) {
    Encoder enc;
    enc.PutTuple(t);
    EXPECT_EQ(enc.size(), t.WireSize());
  }
}

TEST(SchemaTest, IndexOfAndProject) {
  SchemaPtr s = SchemaAB();
  ASSERT_OK_AND_ASSIGN(size_t idx, s->IndexOf("B"));
  EXPECT_EQ(idx, 1u);
  EXPECT_TRUE(s->IndexOf("Z").status().IsNotFound());
  ASSERT_OK_AND_ASSIGN(SchemaPtr proj, s->Project({"B"}));
  EXPECT_EQ(proj->num_fields(), 1u);
  EXPECT_EQ(proj->field(0).name, "B");
  EXPECT_TRUE(s->Project({"B", "Q"}).status().IsNotFound());
}

TEST(SchemaTest, AddFieldCreatesNewSchema) {
  SchemaPtr s = SchemaAB();
  SchemaPtr extended = s->AddField(Field{"Result", ValueType::kDouble});
  EXPECT_EQ(s->num_fields(), 2u);
  EXPECT_EQ(extended->num_fields(), 3u);
  EXPECT_TRUE(extended->HasField("Result"));
}

}  // namespace
}  // namespace aurora
