// Copy-on-write tuple bodies: copies alias one allocation until a mutation
// detaches a private body, and sharing is never observable through the
// value/equality/wire-size API. Also covers the end-to-end aliasing the COW
// design exists for: a tuple pushed through an engine reaches the output
// callback still sharing the original body.
#include <gtest/gtest.h>

#include "engine/aurora_engine.h"
#include "tests/test_util.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"

namespace aurora {
namespace {

SchemaPtr SchemaABS() {
  return Schema::Make({Field{"A", ValueType::kInt64},
                       Field{"B", ValueType::kInt64},
                       Field{"S", ValueType::kString}});
}

Tuple T(int64_t a, int64_t b, const std::string& s) {
  return MakeTuple(SchemaABS(), {Value(a), Value(b), Value(s)});
}

TEST(CowTupleTest, CopySharesBody) {
  Tuple t = T(1, 2, "payload");
  Tuple copy = t;
  EXPECT_TRUE(copy.SharesBodyWith(t));
  EXPECT_TRUE(t.SharesBodyWith(copy));
  EXPECT_TRUE(copy.ValuesEqual(t));
  Tuple moved = std::move(copy);
  EXPECT_TRUE(moved.SharesBodyWith(t));
}

TEST(CowTupleTest, DefaultConstructedSharesNothing) {
  Tuple a, b;
  EXPECT_FALSE(a.SharesBodyWith(b));  // null bodies never count as shared
  EXPECT_EQ(a.num_values(), 0u);
  EXPECT_TRUE(a.ValuesEqual(b));  // both empty
}

TEST(CowTupleTest, MutationAfterShareDetachesPrivateCopy) {
  Tuple t = T(1, 2, "original");
  Tuple copy = t;
  ASSERT_TRUE(copy.SharesBodyWith(t));
  copy.SetValue(2, Value("changed"));
  EXPECT_FALSE(copy.SharesBodyWith(t));
  // The writer sees the new value, the other handle is untouched.
  EXPECT_EQ(copy.value(2).AsString(), "changed");
  EXPECT_EQ(t.value(2).AsString(), "original");
  EXPECT_FALSE(copy.ValuesEqual(t));
}

TEST(CowTupleTest, MutableValuesAlsoDetaches) {
  Tuple t = T(1, 2, "x");
  Tuple copy = t;
  copy.MutableValues()[0] = Value(int64_t{42});
  EXPECT_FALSE(copy.SharesBodyWith(t));
  EXPECT_EQ(copy.value(0).AsInt(), 42);
  EXPECT_EQ(t.value(0).AsInt(), 1);
}

TEST(CowTupleTest, SoleOwnerMutationDoesNotCopy) {
  // With a unique body the mutation happens in place — observable only
  // through values, but at least assert correctness of the fast path.
  Tuple t = T(7, 8, "solo");
  t.SetValue(0, Value(int64_t{9}));
  EXPECT_EQ(t.value(0).AsInt(), 9);
  EXPECT_EQ(t.value(2).AsString(), "solo");
}

TEST(CowTupleTest, MetadataIsPerHandleAndDoesNotDetach) {
  Tuple t = T(1, 2, "meta");
  t.set_seq(5);
  t.set_timestamp(SimTime::Millis(3));
  t.set_trace_id(99);
  Tuple copy = t;
  copy.set_seq(6);
  copy.set_timestamp(SimTime::Millis(4));
  copy.set_trace_id(100);
  // Restamping metadata must not trigger a body copy...
  EXPECT_TRUE(copy.SharesBodyWith(t));
  // ...and must not leak across handles.
  EXPECT_EQ(t.seq(), 5u);
  EXPECT_EQ(t.trace_id(), 99u);
  EXPECT_EQ(t.timestamp(), SimTime::Millis(3));
  EXPECT_EQ(copy.seq(), 6u);
  EXPECT_EQ(copy.trace_id(), 100u);
}

TEST(CowTupleTest, ValuesEqualAcrossDistinctBodies) {
  Tuple a = T(1, 2, "same");
  Tuple b = T(1, 2, "same");
  EXPECT_FALSE(a.SharesBodyWith(b));
  EXPECT_TRUE(a.ValuesEqual(b));
  EXPECT_FALSE(a.ValuesEqual(T(1, 2, "different")));
}

TEST(CowTupleTest, WireSizeUnchangedByShareAndUpdatedByMutation) {
  Tuple t = T(1, 2, "abcdef");
  size_t before = t.WireSize();
  Tuple copy = t;
  EXPECT_EQ(copy.WireSize(), before);  // shared cached size
  copy.SetValue(2, Value("abcdefghij"));
  EXPECT_EQ(copy.WireSize(), before + 4);  // 4 more string bytes
  EXPECT_EQ(t.WireSize(), before);         // original cache untouched
  // An equal-content rebuilt tuple reports the identical wire size.
  EXPECT_EQ(T(1, 2, "abcdef").WireSize(), before);
}

TEST(CowTupleTest, HotPathSectionFlagAndExemptionNest) {
  EXPECT_FALSE(TupleHotPathSection::InHotPath());
  {
    TupleHotPathSection hot;
    EXPECT_TRUE(TupleHotPathSection::InHotPath());
    {
      TupleHotPathSection::Exemption allow;
      EXPECT_FALSE(TupleHotPathSection::InHotPath());
      {
        TupleHotPathSection nested;
        EXPECT_TRUE(TupleHotPathSection::InHotPath());
      }
      EXPECT_FALSE(TupleHotPathSection::InHotPath());
    }
    EXPECT_TRUE(TupleHotPathSection::InHotPath());
  }
  EXPECT_FALSE(TupleHotPathSection::InHotPath());
}

// The reason COW exists: a tuple that passes through the engine unmodified
// (filter pass-through, queue hop, output delivery) arrives at the callback
// still aliasing the pushed body, and its trace id survives the trip.
TEST(CowTupleTest, EnginePassThroughSharesBodyWithInput) {
  AuroraEngine engine;
  PortId in = *engine.AddInput("in", SchemaABS());
  PortId out = *engine.AddOutput("out");
  BoxId f = *engine.AddBox(FilterSpec(Predicate::True()));
  ASSERT_OK(engine.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(f, 0))
                .status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(f, 0), Endpoint::OutputPort(out))
                .status());
  ASSERT_OK(engine.InitializeBoxes());
  std::vector<Tuple> collected;
  engine.SetOutputCallback(out, [&](const Tuple& t, SimTime) {
    collected.push_back(t);
  });

  Tuple pushed = T(3, 4, "through");
  pushed.set_trace_id(1234);
  ASSERT_OK(engine.PushInput(in, pushed, SimTime::Millis(1)));
  ASSERT_OK(engine.RunUntilQuiescent(SimTime::Millis(1)));
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_TRUE(collected[0].SharesBodyWith(pushed));
  EXPECT_EQ(collected[0].trace_id(), 1234u);
  EXPECT_TRUE(collected[0].ValuesEqual(pushed));
}

// ---- COW under the batched (ProcessBatch) path ---------------------------

// Tuples pushed into a TupleBatch alias the caller's bodies, and building a
// columnar view reads values without detaching anything.
TEST(CowBatchTest, BatchTuplesAliasAndColumnBuildDoesNotDetach) {
  SchemaPtr ab = testing_util::SchemaAB();
  Tuple a = MakeTuple(ab, {Value(int64_t{1}), Value(int64_t{2})});
  Tuple b = MakeTuple(ab, {Value(int64_t{3}), Value(int64_t{4})});
  TupleBatch batch;
  batch.Push(a, SimTime::Millis(1));
  batch.Push(b, SimTime::Millis(2));
  EXPECT_TRUE(batch.tuple(0).SharesBodyWith(a));
  EXPECT_TRUE(batch.tuple(1).SharesBodyWith(b));
  const int64_t* col = batch.I64Column(0);
  ASSERT_NE(col, nullptr);
  EXPECT_EQ(col[0], 1);
  EXPECT_EQ(col[1], 3);
  // The columnar read is non-mutating: bodies still shared afterwards.
  EXPECT_TRUE(batch.tuple(0).SharesBodyWith(a));
  EXPECT_TRUE(batch.tuple(1).SharesBodyWith(b));
}

// Detaching one tuple's body mid-batch (an operator mutating its private
// copy) must not disturb the other handles: SharesBodyWith flips only for
// the detached pair, and ValuesEqual falls back from the shared-body
// short-circuit to a real element-wise compare.
TEST(CowBatchTest, MidBatchDetachIsIsolatedAndEqualityStillHolds) {
  SchemaPtr ab = testing_util::SchemaAB();
  Tuple a = MakeTuple(ab, {Value(int64_t{1}), Value(int64_t{2})});
  Tuple b = MakeTuple(ab, {Value(int64_t{3}), Value(int64_t{4})});
  TupleBatch batch;
  batch.Push(a, SimTime::Millis(1));
  batch.Push(b, SimTime::Millis(2));
  // Write-back through the batch detaches that slot's body only.
  batch.tuple(0).SetValue(1, Value(int64_t{2}));  // same content, new body
  EXPECT_FALSE(batch.tuple(0).SharesBodyWith(a));
  EXPECT_TRUE(batch.tuple(1).SharesBodyWith(b));
  // No shared body to short-circuit on; the element-wise path must agree.
  EXPECT_TRUE(batch.tuple(0).ValuesEqual(a));
  batch.tuple(0).SetValue(1, Value(int64_t{99}));
  EXPECT_FALSE(batch.tuple(0).ValuesEqual(a));
  EXPECT_EQ(a.value(1).AsInt(), 2);  // original handle untouched
}

// Clear() recycles the scratch (capacity kept) but never leaks state: a
// column built for one generation of tuples must be rebuilt for the next,
// and schema-uniformity is re-derived from scratch.
TEST(CowBatchTest, ScratchReuseAcrossClearRebuildsColumns) {
  SchemaPtr ab = testing_util::SchemaAB();
  TupleBatch batch;
  batch.Push(MakeTuple(ab, {Value(int64_t{10}), Value(int64_t{0})}),
             SimTime::Millis(1));
  const int64_t* col = batch.I64Column(0);
  ASSERT_NE(col, nullptr);
  EXPECT_EQ(col[0], 10);

  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(batch.uniform_schema());
  batch.Push(MakeTuple(ab, {Value(int64_t{20}), Value(int64_t{0})}),
             SimTime::Millis(2));
  batch.Push(MakeTuple(ab, {Value(int64_t{30}), Value(int64_t{0})}),
             SimTime::Millis(3));
  col = batch.I64Column(0);
  ASSERT_NE(col, nullptr);
  EXPECT_EQ(col[0], 20);
  EXPECT_EQ(col[1], 30);

  // A generation with a string where int64 was expected invalidates the
  // cached "column 0 is int64" verdict once cleared and refilled.
  batch.Clear();
  SchemaPtr abs = SchemaABS();
  batch.Push(T(1, 2, "not-an-int"), SimTime::Millis(4));
  EXPECT_EQ(batch.I64Column(2), nullptr);  // S column is a string
  const int64_t* a_col = batch.I64Column(0);
  ASSERT_NE(a_col, nullptr);
  EXPECT_EQ(a_col[0], 1);
}

// The batched filter path is still zero-copy end to end: with batch_size
// > 1 a pass-through tuple reaches the output callback aliasing the pushed
// body, exactly like the scalar path above.
TEST(CowBatchTest, BatchedEnginePassThroughSharesBodyWithInput) {
  EngineOptions eopts;
  eopts.batch_size = 8;
  AuroraEngine engine(eopts);
  PortId in = *engine.AddInput("in", SchemaABS());
  PortId out = *engine.AddOutput("out");
  BoxId f = *engine.AddBox(FilterSpec(Predicate::True()));
  ASSERT_OK(engine.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(f, 0))
                .status());
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(f, 0), Endpoint::OutputPort(out))
                .status());
  ASSERT_OK(engine.InitializeBoxes());
  std::vector<Tuple> collected;
  engine.SetOutputCallback(out, [&](const Tuple& t, SimTime) {
    collected.push_back(t);
  });

  Tuple pushed = T(3, 4, "batched-through");
  pushed.set_trace_id(4321);
  ASSERT_OK(engine.PushInput(in, pushed, SimTime::Millis(1)));
  ASSERT_OK(engine.RunUntilQuiescent(SimTime::Millis(1)));
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_TRUE(collected[0].SharesBodyWith(pushed));
  EXPECT_EQ(collected[0].trace_id(), 4321u);
  EXPECT_TRUE(collected[0].ValuesEqual(pushed));
}

// ConnectionPoint fan-out records alias the same body as well.
TEST(CowTupleTest, ConnectionPointSubscriberSharesBody) {
  AuroraEngine engine;
  PortId in = *engine.AddInput("in", SchemaABS());
  PortId out = *engine.AddOutput("out");
  BoxId f = *engine.AddBox(FilterSpec(Predicate::True()));
  ArcId arc = *engine.Connect(Endpoint::InputPort(in), Endpoint::BoxPort(f, 0));
  ASSERT_OK(engine.Connect(Endpoint::BoxPort(f, 0), Endpoint::OutputPort(out))
                .status());
  ASSERT_OK(engine.InitializeBoxes());
  ASSERT_OK(engine.MakeConnectionPoint(arc, "cp", RetentionPolicy{}));
  std::vector<Tuple> seen;
  ASSERT_OK_AND_ASSIGN(ConnectionPoint * cp, engine.GetConnectionPoint("cp"));
  cp->Subscribe([&](const Tuple& t, SimTime) { seen.push_back(t); });

  Tuple pushed = T(5, 6, "fanout");
  ASSERT_OK(engine.PushInput(in, pushed, SimTime::Millis(1)));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_TRUE(seen[0].SharesBodyWith(pushed));
}

}  // namespace
}  // namespace aurora
