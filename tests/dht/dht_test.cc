// The DHT-based inter-participant catalog (§4.1): consistent hashing,
// Chord-style lookups, replication, and failure behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "dht/dht_catalog.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

TEST(ConsistentHashTest, OwnerIsDeterministic) {
  ConsistentHashRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(ring.AddNode(i, "node" + std::to_string(i)));
  }
  ASSERT_OK_AND_ASSIGN(NodeId o1, ring.Owner("medusa/stream1"));
  ASSERT_OK_AND_ASSIGN(NodeId o2, ring.Owner("medusa/stream1"));
  EXPECT_EQ(o1, o2);
}

TEST(ConsistentHashTest, RemovalOnlyMovesVictimKeys) {
  ConsistentHashRing ring(8);
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(ring.AddNode(i, "node" + std::to_string(i)));
  }
  std::map<std::string, NodeId> before;
  for (int k = 0; k < 500; ++k) {
    std::string key = "key" + std::to_string(k);
    before[key] = *ring.Owner(key);
  }
  ASSERT_OK(ring.RemoveNode(3));
  int moved = 0;
  for (const auto& [key, owner] : before) {
    NodeId now = *ring.Owner(key);
    if (owner != 3) {
      EXPECT_EQ(now, owner) << key;  // unaffected keys stay put
    } else {
      EXPECT_NE(now, 3);
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(ConsistentHashTest, VnodesSmoothLoad) {
  auto spread = [](int vnodes) {
    ConsistentHashRing ring(vnodes);
    for (int i = 0; i < 10; ++i) {
      (void)ring.AddNode(i, "node" + std::to_string(i));
    }
    auto shares = ring.OwnershipShares();
    double max_share = 0.0;
    for (const auto& [n, s] : shares) max_share = std::max(max_share, s);
    return max_share;
  };
  // More virtual nodes → the largest ownership share shrinks toward 1/N.
  EXPECT_LT(spread(64), spread(1));
}

TEST(ConsistentHashTest, LookupFindsOwnerWithFewHops) {
  ConsistentHashRing ring(1);
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    ASSERT_OK(ring.AddNode(i, "node" + std::to_string(i)));
  }
  for (int k = 0; k < 50; ++k) {
    std::string key = "key" + std::to_string(k);
    ASSERT_OK_AND_ASSIGN(auto result, ring.Lookup(k % n, key));
    EXPECT_EQ(result.owner, *ring.Owner(key));
    // Chord bound: O(log2 N) hops with slack.
    EXPECT_LE(result.hops, 2 * static_cast<int>(std::log2(n)) + 2);
  }
}

TEST(ConsistentHashTest, SuccessorsAreDistinct) {
  ConsistentHashRing ring(4);
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(ring.AddNode(i, "node" + std::to_string(i)));
  }
  ASSERT_OK_AND_ASSIGN(auto succ, ring.Successors("some/key", 3));
  ASSERT_EQ(succ.size(), 3u);
  EXPECT_NE(succ[0], succ[1]);
  EXPECT_NE(succ[1], succ[2]);
  EXPECT_NE(succ[0], succ[2]);
}

TEST(DhtCatalogTest, PutGetRoundTrip) {
  DhtCatalog catalog(4, 2);
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK(catalog.AddNode(i, "node" + std::to_string(i)));
  }
  DhtEntry entry;
  entry.kind = "stream";
  entry.payload = {1, 2, 3};
  entry.locations = {5};
  QualifiedName name{"mit", "trafficfeed"};
  ASSERT_OK(catalog.Put(name, entry));
  ASSERT_OK_AND_ASSIGN(auto got, catalog.Get(0, name));
  EXPECT_EQ(got.entry.kind, "stream");
  EXPECT_EQ(got.entry.payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(got.entry.locations, std::vector<NodeId>{5});
  EXPECT_GE(got.hops, 0);
}

TEST(DhtCatalogTest, QualifiedNamesAreParticipantScoped) {
  // §4.1: "each entity's name begins with the name of the participant who
  // defined it".
  QualifiedName a{"mit", "feed"};
  QualifiedName b{"brown", "feed"};
  EXPECT_NE(a.Key(), b.Key());
  QualifiedName parsed = QualifiedName::Parse("mit/feed");
  EXPECT_EQ(parsed.participant, "mit");
  EXPECT_EQ(parsed.entity, "feed");
}

TEST(DhtCatalogTest, UpdateLocationsForLoadSharing) {
  DhtCatalog catalog;
  ASSERT_OK(catalog.AddNode(0, "n0"));
  QualifiedName name{"mit", "feed"};
  ASSERT_OK(catalog.Put(name, DhtEntry{"stream", {}, {0}}));
  // §4.2: "Load sharing between nodes may later move or partition the
  // data... the location information is always propagated".
  ASSERT_OK(catalog.UpdateLocations(name, {1, 2}));
  ASSERT_OK_AND_ASSIGN(auto got, catalog.Get(0, name));
  EXPECT_EQ(got.entry.locations, (std::vector<NodeId>{1, 2}));
}

TEST(DhtCatalogTest, EntriesSurviveNodeRemoval) {
  DhtCatalog catalog(4, 3);
  for (int i = 0; i < 6; ++i) {
    ASSERT_OK(catalog.AddNode(i, "node" + std::to_string(i)));
  }
  for (int k = 0; k < 40; ++k) {
    ASSERT_OK(catalog.Put(QualifiedName{"p", "e" + std::to_string(k)},
                          DhtEntry{"stream", {static_cast<uint8_t>(k)}, {}}));
  }
  // Remove two nodes; with replication 3 everything must remain readable.
  ASSERT_OK(catalog.RemoveNode(1));
  ASSERT_OK(catalog.RemoveNode(4));
  for (int k = 0; k < 40; ++k) {
    ASSERT_OK_AND_ASSIGN(
        auto got, catalog.Get(0, QualifiedName{"p", "e" + std::to_string(k)}));
    EXPECT_EQ(got.entry.payload[0], static_cast<uint8_t>(k));
  }
}

TEST(DhtCatalogTest, StorageSpreadsAcrossNodes) {
  DhtCatalog catalog(8, 2);
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    ASSERT_OK(catalog.AddNode(i, "node" + std::to_string(i)));
  }
  const int entries = 400;
  for (int k = 0; k < entries; ++k) {
    ASSERT_OK(catalog.Put(QualifiedName{"p", "e" + std::to_string(k)},
                          DhtEntry{"stream", {}, {}}));
  }
  // Each node stores roughly entries * replication / n, within 3x.
  double expected = 400.0 * 2 / n;
  for (int i = 0; i < n; ++i) {
    EXPECT_GT(catalog.StoredOn(i), expected / 3) << i;
    EXPECT_LT(catalog.StoredOn(i), expected * 3) << i;
  }
}

TEST(DhtCatalogTest, MissingEntryIsNotFound) {
  DhtCatalog catalog;
  ASSERT_OK(catalog.AddNode(0, "n0"));
  EXPECT_TRUE(catalog.Get(0, QualifiedName{"x", "y"}).status().IsNotFound());
  EXPECT_TRUE(catalog.Remove(QualifiedName{"x", "y"}).IsNotFound());
}

}  // namespace
}  // namespace aurora
