#ifndef AURORA_TESTS_TEST_UTIL_H_
#define AURORA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "ops/operator.h"
#include "tuple/tuple.h"

namespace aurora {
namespace testing_util {

/// The one way tests derive randomness: an explicitly seeded, splitmix-based
/// Rng whose stream is stable across platforms and standard-library
/// versions. Raw rand()/std::random_device/std::mt19937 are banned from the
/// tree (scripts/check_seed_discipline.sh enforces it) because they make
/// failing runs unreproducible. The fixed salt decorrelates small
/// consecutive seeds without hurting determinism.
inline Rng MakeTestRng(uint64_t seed) {
  return Rng(0x7465737475ull ^ (seed * 0x9e3779b97f4a7c15ull));
}

#define ASSERT_OK(expr)                                        \
  do {                                                         \
    auto _st = (expr);                                         \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define EXPECT_OK(expr)                                        \
  do {                                                         \
    auto _st = (expr);                                         \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                   \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  ASSERT_OK_AND_ASSIGN_IMPL(                                   \
      AURORA_CONCAT_(_test_res_, __LINE__), lhs, expr)
#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)              \
  auto tmp = (expr);                                           \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();            \
  lhs = std::move(tmp).ValueUnsafe();

/// Emitter that records everything an operator produces.
class CollectingEmitter : public Emitter {
 public:
  void Emit(int output, Tuple t) override {
    emissions_.emplace_back(output, std::move(t));
  }

  const std::vector<std::pair<int, Tuple>>& emissions() const {
    return emissions_;
  }
  /// Tuples emitted on a specific output, in order.
  std::vector<Tuple> OnOutput(int output) const {
    std::vector<Tuple> out;
    for (const auto& [o, t] : emissions_) {
      if (o == output) out.push_back(t);
    }
    return out;
  }
  void Clear() { emissions_.clear(); }

 private:
  std::vector<std::pair<int, Tuple>> emissions_;
};

/// Schema (A:int64, B:int64) used by the paper's Figure 2 example.
inline SchemaPtr SchemaAB() {
  return Schema::Make({Field{"A", ValueType::kInt64},
                       Field{"B", ValueType::kInt64}});
}

/// The seven-tuple sample stream of paper Figure 2, with sequence numbers
/// 1..7 and timestamps 1ms..7ms.
inline std::vector<Tuple> PaperFigure2Stream() {
  SchemaPtr schema = SchemaAB();
  std::vector<std::pair<int64_t, int64_t>> rows = {
      {1, 2}, {1, 3}, {2, 2}, {2, 1}, {2, 6}, {4, 5}, {4, 2}};
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < rows.size(); ++i) {
    Tuple t = MakeTuple(schema, {Value(rows[i].first), Value(rows[i].second)});
    t.set_seq(static_cast<SeqNo>(i + 1));
    t.set_timestamp(SimTime::Millis(static_cast<int64_t>(i + 1)));
    tuples.push_back(std::move(t));
  }
  return tuples;
}

/// Builds + initializes an operator and runs `tuples` through input 0.
inline Result<std::vector<Tuple>> RunUnaryOp(const OperatorSpec& spec,
                                             const SchemaPtr& schema,
                                             const std::vector<Tuple>& tuples,
                                             bool drain = false) {
  AURORA_ASSIGN_OR_RETURN(OperatorPtr op, CreateOperator(spec));
  AURORA_RETURN_NOT_OK(op->Init({schema}));
  CollectingEmitter emitter;
  for (const auto& t : tuples) {
    AURORA_RETURN_NOT_OK(op->Process(0, t, t.timestamp(), &emitter));
  }
  if (drain) op->Drain(&emitter);
  return emitter.OnOutput(0);
}

/// Int value of field `name` in tuple `t`.
inline int64_t GetInt(const Tuple& t, const std::string& name) {
  return t.Get(name).AsInt();
}
inline double GetDouble(const Tuple& t, const std::string& name) {
  return t.Get(name).AsNumeric();
}

}  // namespace testing_util
}  // namespace aurora

#endif  // AURORA_TESTS_TEST_UTIL_H_
