#include "workload/generator.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

TEST(ArrivalTest, ConstantRateExact) {
  auto arrivals = ArrivalProcess::Constant(100.0);  // 100/s
  Rng rng(1);
  EXPECT_EQ(arrivals->NextInterarrival(&rng).micros(), 10'000);
}

TEST(ArrivalTest, PoissonMeanMatchesRate) {
  auto arrivals = ArrivalProcess::Poisson(200.0);
  Rng rng(2);
  double sum_s = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum_s += arrivals->NextInterarrival(&rng).seconds();
  EXPECT_NEAR(sum_s / n, 1.0 / 200.0, 5e-4);
}

TEST(ArrivalTest, BurstyAlternatesRates) {
  auto arrivals =
      ArrivalProcess::Bursty(100.0, 10.0, SimDuration::Seconds(1));
  Rng rng(3);
  // Count arrivals in consecutive 1s windows; they must alternate between
  // ~100 and ~1000.
  std::vector<int> per_window;
  double t = 0;
  int count = 0;
  int window = 0;
  while (window < 6) {
    t += arrivals->NextInterarrival(&rng).seconds();
    if (t >= window + 1) {
      per_window.push_back(count);
      count = 0;
      ++window;
    }
    ++count;
  }
  // Adjacent windows differ by a large factor somewhere.
  bool saw_burst = false;
  for (size_t i = 1; i < per_window.size(); ++i) {
    double hi = std::max(per_window[i], per_window[i - 1]);
    double lo = std::max(1, std::min(per_window[i], per_window[i - 1]));
    if (hi / lo > 4.0) saw_burst = true;
  }
  EXPECT_TRUE(saw_burst);
}

TEST(FieldGenTest, UniformIntRange) {
  auto gen = FieldGen::UniformInt(5, 9);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    int64_t v = gen->Next(&rng).AsInt();
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(FieldGenTest, SequentialCounts) {
  auto gen = FieldGen::Sequential();
  Rng rng(5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(gen->Next(&rng).AsInt(), i);
}

TEST(FieldGenTest, ChoicePicksFromOptions) {
  auto gen = FieldGen::Choice({"boston", "cambridge"});
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    std::string v = gen->Next(&rng).AsString();
    EXPECT_TRUE(v == "boston" || v == "cambridge");
  }
}

TEST(StreamGeneratorTest, ProducesSchemaConformantTuples) {
  std::vector<std::unique_ptr<FieldGen>> gens;
  gens.push_back(FieldGen::Sequential());
  gens.push_back(FieldGen::UniformInt(0, 9));
  StreamGenerator gen(SchemaAB(), std::move(gens),
                      ArrivalProcess::Constant(1000.0), /*seed=*/7);
  Tuple t = gen.Next(SimTime::Millis(5));
  EXPECT_TRUE(t.schema()->Equals(*SchemaAB()));
  EXPECT_EQ(t.timestamp(), SimTime::Millis(5));
  EXPECT_EQ(t.Get("A").AsInt(), 0);
  EXPECT_EQ(gen.Next(SimTime::Millis(6)).Get("A").AsInt(), 1);
  EXPECT_EQ(gen.NextGap().micros(), 1'000);
}

TEST(StreamGeneratorTest, SameSeedSameStream) {
  auto make = [] {
    std::vector<std::unique_ptr<FieldGen>> gens;
    gens.push_back(FieldGen::UniformInt(0, 1000));
    gens.push_back(FieldGen::ZipfInt(100, 1.0));
    return StreamGenerator(SchemaAB(), std::move(gens),
                           ArrivalProcess::Poisson(100.0), 42);
  };
  StreamGenerator g1 = make(), g2 = make();
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(g1.Next(SimTime()).ValuesEqual(g2.Next(SimTime())));
    EXPECT_EQ(g1.NextGap().micros(), g2.NextGap().micros());
  }
}

}  // namespace
}  // namespace aurora
