// QoS utility graphs and the Fig. 9 inference rule Q_i(t) = Q_o(t + T_B).
#include <gtest/gtest.h>
#include <cmath>

#include "qos/inference.h"
#include "qos/qos_spec.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

TEST(UtilityGraphTest, EvalInterpolatesAndClamps) {
  ASSERT_OK_AND_ASSIGN(UtilityGraph g,
                       UtilityGraph::Make({{100, 1.0}, {200, 0.0}}));
  EXPECT_DOUBLE_EQ(g.Eval(50), 1.0);    // clamp left
  EXPECT_DOUBLE_EQ(g.Eval(100), 1.0);
  EXPECT_DOUBLE_EQ(g.Eval(150), 0.5);   // interpolation
  EXPECT_DOUBLE_EQ(g.Eval(200), 0.0);
  EXPECT_DOUBLE_EQ(g.Eval(500), 0.0);   // clamp right
}

TEST(UtilityGraphTest, ValidatesInput) {
  EXPECT_TRUE(UtilityGraph::Make({}).status().IsInvalidArgument());
  EXPECT_TRUE(UtilityGraph::Make({{2, 0.5}, {1, 0.6}})
                  .status()
                  .IsInvalidArgument());  // x not increasing
  EXPECT_TRUE(UtilityGraph::Make({{1, 1.5}}).status().IsInvalidArgument());
}

TEST(UtilityGraphTest, ShiftLeftImplementsInferenceRule) {
  ASSERT_OK_AND_ASSIGN(UtilityGraph q_o,
                       UtilityGraph::Make({{100, 1.0}, {200, 0.0}}));
  UtilityGraph q_i = q_o.ShiftLeft(30.0);
  // Q_i(t) == Q_o(t + 30) for all t.
  for (double t : {0.0, 70.0, 120.0, 170.0, 400.0}) {
    EXPECT_DOUBLE_EQ(q_i.Eval(t), q_o.Eval(t + 30.0)) << "t=" << t;
  }
}

TEST(UtilityGraphTest, CriticalX) {
  ASSERT_OK_AND_ASSIGN(UtilityGraph g,
                       UtilityGraph::Make({{100, 1.0}, {200, 0.0}}));
  EXPECT_NEAR(g.CriticalX(0.5), 150.0, 1e-9);
  ASSERT_OK_AND_ASSIGN(UtilityGraph flat, UtilityGraph::Make({{0, 1.0}}));
  EXPECT_TRUE(std::isinf(flat.CriticalX(0.5)));
}

TEST(QoSSpecTest, UtilityComposesLatencyAndLoss) {
  QoSSpec spec;
  spec.latency = *UtilityGraph::Make({{100, 1.0}, {200, 0.0}});
  spec.loss = *UtilityGraph::Make({{0.0, 0.0}, {1.0, 1.0}});
  EXPECT_DOUBLE_EQ(spec.Utility(100, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(spec.Utility(150, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(spec.Utility(100, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(spec.Utility(150, 0.5), 0.25);
}

TEST(InferenceTest, ChainComposesAdditively) {
  // Fig. 9: S1 -> S2 -> S3 with QoS at S3's output; inferring through the
  // chain shifts by the total downstream processing time.
  QoSSpec out;
  out.latency = *UtilityGraph::Make({{100, 1.0}, {200, 0.0}});
  QoSSpec at_s2 = InferThroughBox(out, 20.0);
  QoSSpec at_s1 = InferThroughChain(out, {20.0, 30.0});
  EXPECT_DOUBLE_EQ(at_s2.latency.Eval(80), 1.0);
  EXPECT_DOUBLE_EQ(at_s2.latency.Eval(130), 0.5);
  // At S1, deadline is 50ms earlier than at S3.
  EXPECT_DOUBLE_EQ(at_s1.latency.Eval(50), 1.0);
  EXPECT_DOUBLE_EQ(at_s1.latency.Eval(100), 0.5);
  EXPECT_DOUBLE_EQ(at_s1.latency.Eval(150), 0.0);
}

TEST(InferenceTest, LossGraphPassesThroughUnchanged) {
  QoSSpec out;
  out.latency = *UtilityGraph::Make({{100, 1.0}, {200, 0.0}});
  out.loss = *UtilityGraph::Make({{0.0, 0.2}, {1.0, 1.0}});
  QoSSpec inferred = InferThroughBox(out, 50.0);
  EXPECT_DOUBLE_EQ(inferred.loss.Eval(0.5), out.loss.Eval(0.5));
}

TEST(InferenceTest, PointwiseMinIsMostStringent) {
  ASSERT_OK_AND_ASSIGN(UtilityGraph a,
                       UtilityGraph::Make({{100, 1.0}, {200, 0.0}}));
  ASSERT_OK_AND_ASSIGN(UtilityGraph b,
                       UtilityGraph::Make({{50, 1.0}, {300, 0.0}}));
  UtilityGraph combined = PointwiseMin({a, b});
  for (double x : {25.0, 75.0, 125.0, 175.0, 250.0, 400.0}) {
    EXPECT_NEAR(combined.Eval(x), std::min(a.Eval(x), b.Eval(x)), 1e-9)
        << "x=" << x;
  }
}

TEST(InferenceTest, PointwiseMinCapturesCrossings) {
  // Graphs that cross between breakpoints: the min must follow the lower
  // envelope exactly, including at the crossing.
  ASSERT_OK_AND_ASSIGN(UtilityGraph a,
                       UtilityGraph::Make({{0, 1.0}, {100, 0.0}}));
  ASSERT_OK_AND_ASSIGN(UtilityGraph b,
                       UtilityGraph::Make({{0, 0.0}, {100, 1.0}}));
  UtilityGraph combined = PointwiseMin({a, b});
  EXPECT_NEAR(combined.Eval(50), 0.5, 1e-9);
  EXPECT_NEAR(combined.Eval(25), 0.25, 1e-9);  // follows b below crossing
  EXPECT_NEAR(combined.Eval(75), 0.25, 1e-9);  // follows a above crossing
}

TEST(InferenceTest, CombineSpecsMergesBothGraphs) {
  QoSSpec s1, s2;
  s1.latency = *UtilityGraph::Make({{100, 1.0}, {200, 0.0}});
  s1.loss = *UtilityGraph::Make({{0.0, 0.0}, {1.0, 1.0}});
  s2.latency = *UtilityGraph::Make({{50, 1.0}, {150, 0.0}});
  s2.loss = *UtilityGraph::Make({{0.0, 0.5}, {1.0, 1.0}});
  QoSSpec combined = CombineSpecs({s1, s2});
  EXPECT_NEAR(combined.latency.Eval(150),
              std::min(s1.latency.Eval(150), s2.latency.Eval(150)), 1e-9);
  EXPECT_NEAR(combined.loss.Eval(0.0), 0.0, 1e-9);
}

TEST(QoSSpecTest, DefaultIsPermissive) {
  QoSSpec d = QoSSpec::Default();
  EXPECT_DOUBLE_EQ(d.Utility(50, 1.0), 1.0);
  EXPECT_LT(d.Utility(800, 1.0), 0.5);
}

}  // namespace
}  // namespace aurora
