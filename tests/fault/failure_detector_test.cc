// HeartbeatFailureDetector: the shared timeout-based detector (§6.3) used
// by the HA layer and the Medusa availability clauses.
#include <gtest/gtest.h>

#include "fault/failure_detector.h"
#include "ha/upstream_backup.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

TEST(FailureDetectorTest, SilencePastTimeoutRaisesOneSuspicion) {
  HeartbeatFailureDetector fd(
      FailureDetectorOptions{SimDuration::Millis(250), 1});
  fd.Arm(0, 1, SimTime::Millis(0));
  // Within the timeout: silence tolerated.
  EXPECT_TRUE(fd.CheckSilence(SimTime::Millis(250)).empty());
  auto fresh = fd.CheckSilence(SimTime::Millis(251));
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].watcher, 0);
  EXPECT_EQ(fresh[0].watched, 1);
  EXPECT_TRUE(fd.IsSuspected(1));
  // Already-suspected endpoints are not re-reported.
  EXPECT_TRUE(fd.CheckSilence(SimTime::Millis(500)).empty());
  EXPECT_EQ(fd.suspicions_raised(), 1u);
}

TEST(FailureDetectorTest, HeartbeatRefutesSuspicion) {
  HeartbeatFailureDetector fd(
      FailureDetectorOptions{SimDuration::Millis(100), 1});
  fd.Arm(0, 1, SimTime::Millis(0));
  ASSERT_EQ(fd.CheckSilence(SimTime::Millis(150)).size(), 1u);
  EXPECT_TRUE(fd.IsSuspected(1));
  fd.RecordHeartbeat(0, 1, SimTime::Millis(160));
  EXPECT_FALSE(fd.IsSuspected(1));
  // Fresh grace after the heartbeat.
  EXPECT_TRUE(fd.CheckSilence(SimTime::Millis(200)).empty());
  ASSERT_EQ(fd.CheckSilence(SimTime::Millis(261)).size(), 1u);
}

TEST(FailureDetectorTest, SuspicionThresholdDelaysConviction) {
  HeartbeatFailureDetector fd(
      FailureDetectorOptions{SimDuration::Millis(100), 3});
  fd.Arm(0, 1, SimTime::Millis(0));
  EXPECT_TRUE(fd.CheckSilence(SimTime::Millis(150)).empty());  // 1st silent
  EXPECT_TRUE(fd.CheckSilence(SimTime::Millis(200)).empty());  // 2nd silent
  EXPECT_EQ(fd.CheckSilence(SimTime::Millis(250)).size(), 1u);  // 3rd convicts
  // One in-between heartbeat resets the count.
  fd.ClearSuspicion(1);
  fd.RecordHeartbeat(0, 1, SimTime::Millis(260));
  EXPECT_TRUE(fd.CheckSilence(SimTime::Millis(400)).empty());  // 1st again
}

TEST(FailureDetectorTest, MultipleWatchersDedupPerWatched) {
  HeartbeatFailureDetector fd(
      FailureDetectorOptions{SimDuration::Millis(100), 1});
  fd.Arm(0, 9, SimTime::Millis(0));
  fd.Arm(1, 9, SimTime::Millis(0));
  fd.Arm(2, 9, SimTime::Millis(0));
  auto fresh = fd.CheckSilence(SimTime::Millis(200));
  ASSERT_EQ(fresh.size(), 1u);  // one suspicion for 9, not three
  EXPECT_EQ(fresh[0].watched, 9);
  EXPECT_EQ(fd.suspicions_raised(), 1u);
}

TEST(FailureDetectorTest, DisarmAndForgetDropState) {
  HeartbeatFailureDetector fd(
      FailureDetectorOptions{SimDuration::Millis(100), 1});
  fd.Arm(0, 1, SimTime::Millis(0));
  fd.Arm(0, 2, SimTime::Millis(0));
  fd.Arm(3, 1, SimTime::Millis(0));
  EXPECT_EQ(fd.armed_pairs(), 3u);
  // Clean shutdown of one pair: no spurious suspicion later.
  fd.Disarm(0, 2);
  EXPECT_FALSE(fd.IsArmed(0, 2));
  // Watched endpoint decommissioned: both watchers dropped.
  fd.ForgetWatched(1);
  EXPECT_EQ(fd.armed_pairs(), 0u);
  EXPECT_TRUE(fd.CheckSilence(SimTime::Seconds(10)).empty());
  EXPECT_EQ(fd.suspicions_raised(), 0u);
}

TEST(FailureDetectorTest, ForgetWatcherSilencesDeadJudge) {
  HeartbeatFailureDetector fd(
      FailureDetectorOptions{SimDuration::Millis(100), 1});
  fd.Arm(0, 1, SimTime::Millis(0));
  fd.Arm(2, 1, SimTime::Millis(0));
  fd.RecordHeartbeat(2, 1, SimTime::Millis(150));
  // Watcher 0 died; without ForgetWatcher its stale pair would convict the
  // live endpoint 1 that watcher 2 still hears.
  fd.ForgetWatcher(0);
  EXPECT_TRUE(fd.CheckSilence(SimTime::Millis(160)).empty());
  EXPECT_FALSE(fd.IsSuspected(1));
}

TEST(FailureDetectorTest, LastHeardTracksHeartbeats) {
  HeartbeatFailureDetector fd;
  EXPECT_FALSE(fd.LastHeard(0, 1).ok());
  fd.Arm(0, 1, SimTime::Millis(5));
  ASSERT_OK_AND_ASSIGN(SimTime t, fd.LastHeard(0, 1));
  EXPECT_EQ(t, SimTime::Millis(5));
  fd.RecordHeartbeat(0, 1, SimTime::Millis(42));
  ASSERT_OK_AND_ASSIGN(t, fd.LastHeard(0, 1));
  EXPECT_EQ(t, SimTime::Millis(42));
}

// Acceptance criterion: end-to-end MTTD is within one heartbeat interval of
// the configured failure timeout. Drive a real HA chain, crash the middle
// server, and measure detection latency through the manager's observer.
TEST(FailureDetectorTest, HaDetectionLatencyWithinOneHeartbeatOfTimeout) {
  Simulation sim;
  OverlayNetwork net(&sim);
  AuroraStarSystem system(&sim, &net, StarOptions{});
  ASSERT_OK_AND_ASSIGN(NodeId s1,
                       system.AddNode(NodeOptions{"s1", 1.0, {}}));
  ASSERT_OK_AND_ASSIGN(NodeId s2,
                       system.AddNode(NodeOptions{"s2", 1.0, {}}));
  ASSERT_OK_AND_ASSIGN(NodeId s3,
                       system.AddNode(NodeOptions{"s3", 1.0, {}}));
  net.FullMesh(LinkOptions{});

  GlobalQuery q;
  ASSERT_OK(q.AddInput("in", SchemaAB()));
  ASSERT_OK(q.AddBox("f", FilterSpec(Predicate::True())));
  ASSERT_OK(q.AddBox("m", MapSpec({{"A", Expr::FieldRef("A")},
                                   {"B", Expr::FieldRef("B")}})));
  ASSERT_OK(q.AddBox("t", TumbleSpec("cnt", "B", {"A"})));
  ASSERT_OK(q.AddOutput("out"));
  ASSERT_OK(q.ConnectInputToBox("in", "f"));
  ASSERT_OK(q.ConnectBoxes("f", 0, "m", 0));
  ASSERT_OK(q.ConnectBoxes("m", 0, "t", 0));
  ASSERT_OK(q.ConnectBoxToOutput("t", 0, "out"));
  ASSERT_OK_AND_ASSIGN(
      DeployedQuery deployed,
      DeployQuery(&system, q, {{"f", s1}, {"m", s2}, {"t", s3}}));

  HaOptions opts;
  opts.heartbeat_interval = SimDuration::Millis(50);
  opts.failure_timeout = SimDuration::Millis(250);
  HaManager ha(&system, opts);
  ASSERT_OK(ha.Protect(&deployed, &q));

  const SimTime crash_at = SimTime::Millis(700);
  SimTime detected_at{};
  ha.SetFailureObserver(
      [&](NodeId failed, NodeId /*watcher*/, SimTime at) {
        if (failed == s2) detected_at = at;
      });
  sim.ScheduleAt(crash_at, [&]() { system.node(s2).SetUp(false); });
  sim.RunUntil(SimTime::Seconds(3));

  ASSERT_EQ(ha.failures_detected(), 1);
  ASSERT_GT(detected_at.micros(), 0);
  SimDuration latency = detected_at - crash_at;
  // The last pre-crash heartbeat can be up to one interval old when the
  // crash hits, and the silence check only runs on heartbeat ticks, so the
  // acceptance bound is: MTTD within one heartbeat interval of the
  // configured timeout.
  EXPECT_GE(latency.micros(),
            opts.failure_timeout.micros() - opts.heartbeat_interval.micros());
  EXPECT_LE(latency.micros(),
            opts.failure_timeout.micros() + opts.heartbeat_interval.micros());
}

}  // namespace
}  // namespace aurora
