// Injector: applying FaultPlans to a live Aurora* system — crash/restart
// with HA recovery, partition/heal re-routing, and seeded chaos
// perturbations that replay bit-for-bit.
#include <gtest/gtest.h>

#include "fault/injector.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

class InjectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    system_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(),
                                                 StarOptions{});
    ASSERT_OK_AND_ASSIGN(s1_, system_->AddNode(NodeOptions{"s1", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(s2_, system_->AddNode(NodeOptions{"s2", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(s3_, system_->AddNode(NodeOptions{"s3", 1.0, {}}));
    net_->FullMesh(LinkOptions{});
  }

  DeployedQuery DeployChain() {
    EXPECT_OK(query_.AddInput("in", SchemaAB()));
    EXPECT_OK(query_.AddBox("f", FilterSpec(Predicate::True())));
    EXPECT_OK(query_.AddBox("m", MapSpec({{"A", Expr::FieldRef("A")},
                                          {"B", Expr::FieldRef("B")}})));
    EXPECT_OK(query_.AddBox("t", TumbleSpec("cnt", "B", {"A"})));
    EXPECT_OK(query_.AddOutput("out"));
    EXPECT_OK(query_.ConnectInputToBox("in", "f"));
    EXPECT_OK(query_.ConnectBoxes("f", 0, "m", 0));
    EXPECT_OK(query_.ConnectBoxes("m", 0, "t", 0));
    EXPECT_OK(query_.ConnectBoxToOutput("t", 0, "out"));
    auto deployed = DeployQuery(system_.get(), query_,
                                {{"f", s1_}, {"m", s2_}, {"t", s3_}});
    EXPECT_TRUE(deployed.ok()) << deployed.status().ToString();
    return *std::move(deployed);
  }

  void InjectTimed(int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      sim_.ScheduleAt(SimTime::Millis(i), [this, i]() {
        Tuple t = MakeTuple(SchemaAB(), {Value(i), Value(i)});
        (void)system_->node(s1_).Inject("in", t);
      });
    }
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> system_;
  GlobalQuery query_;
  NodeId s1_ = -1, s2_ = -1, s3_ = -1;
};

TEST_F(InjectorTest, CrashRestartWithHaRecovery) {
  DeployedQuery deployed = DeployChain();
  uint64_t delivered = 0;
  ASSERT_OK(system_->CollectOutput(
      s3_, "out", [&](const Tuple&, SimTime) { ++delivered; }));
  InjectTimed(0, 2000);

  HaOptions opts;
  HaManager ha(system_.get(), opts);
  ASSERT_OK(ha.Protect(&deployed, &query_));

  FaultPlan plan;
  plan.CrashAt(SimTime::Millis(700), s2_)
      .RestartAt(SimTime::Millis(1700), s2_);
  InjectorOptions iopts;
  iopts.seed = 7;
  iopts.ha = &ha;
  Injector injector(system_.get(), plan, iopts);
  ASSERT_OK(injector.Arm());

  sim_.RunUntil(SimTime::Seconds(4));

  EXPECT_EQ(injector.crashes(), 1);
  EXPECT_EQ(injector.restarts(), 1);
  EXPECT_EQ(ha.failures_detected(), 1);
  EXPECT_EQ(ha.recoveries(), 1);
  EXPECT_GT(ha.replayed_tuples(), 0u);
  // The chain keeps delivering after recovery re-routes around s2.
  EXPECT_GT(delivered, 1000u);
  // MTTD/MTTR instrumentation fired through the HA observers.
  ASSERT_EQ(injector.mttd_ms().size(), 1u);
  ASSERT_EQ(injector.mttr_ms().size(), 1u);
  EXPECT_GT(injector.mttd_ms()[0], 0.0);
  EXPECT_GE(injector.mttr_ms()[0], injector.mttd_ms()[0]);
  // The restarted node is back in the overlay.
  EXPECT_TRUE(system_->node(s2_).up());
}

TEST_F(InjectorTest, CrashWipesVolatileStateAndCountsLoss) {
  DeployedQuery deployed = DeployChain();
  InjectTimed(0, 500);
  // Retention on, but no manager: logs only grow, so the crash strands them.
  for (size_t i = 0; i < system_->num_nodes(); ++i) {
    system_->node(static_cast<NodeId>(i)).RetainOutputLogs(true);
  }
  FaultPlan plan;
  plan.CrashAt(SimTime::Millis(400), s1_);
  Injector injector(system_.get(), plan, InjectorOptions{});
  ASSERT_OK(injector.Arm());
  sim_.RunUntil(SimTime::Seconds(1));

  EXPECT_GT(injector.tuples_lost(), 0u);
  EXPECT_FALSE(system_->node(s1_).up());
  for (const auto& [name, binding] : system_->node(s1_).bindings()) {
    EXPECT_TRUE(binding.output_log.empty());
    EXPECT_TRUE(binding.pending.empty());
  }
}

TEST_F(InjectorTest, PartitionDropsThenHealRestoresDelivery) {
  // Line topology s1 - s2 - s3: the single s1->s2 link has no detour.
  net_ = std::make_unique<OverlayNetwork>(&sim_);
  system_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(),
                                               StarOptions{});
  ASSERT_OK_AND_ASSIGN(s1_, system_->AddNode(NodeOptions{"s1", 1.0, {}}));
  ASSERT_OK_AND_ASSIGN(s2_, system_->AddNode(NodeOptions{"s2", 1.0, {}}));
  ASSERT_OK_AND_ASSIGN(s3_, system_->AddNode(NodeOptions{"s3", 1.0, {}}));
  ASSERT_OK(net_->AddLink(s1_, s2_, LinkOptions{}));
  ASSERT_OK(net_->AddLink(s2_, s3_, LinkOptions{}));

  DeployedQuery deployed = DeployChain();
  uint64_t delivered = 0;
  ASSERT_OK(system_->CollectOutput(
      s3_, "out", [&](const Tuple&, SimTime) { ++delivered; }));
  InjectTimed(0, 2000);

  FaultPlan plan;
  plan.PartitionAt(SimTime::Millis(500), s1_, s2_)
      .HealAt(SimTime::Millis(1500), s1_, s2_);
  Injector injector(system_.get(), plan, InjectorOptions{});
  ASSERT_OK(injector.Arm());

  sim_.RunUntil(SimTime::Millis(1400));
  EXPECT_EQ(injector.partitions(), 1);
  EXPECT_FALSE(net_->IsLinkUp(s1_, s2_));
  uint64_t unroutable_mid = net_->MessagesDroppedUnroutable();
  EXPECT_GT(unroutable_mid, 0u);  // traffic hit the dead route
  uint64_t delivered_mid = delivered;

  sim_.RunUntil(SimTime::Seconds(4));
  EXPECT_EQ(injector.heals(), 1);
  EXPECT_TRUE(net_->IsLinkUp(s1_, s2_));
  EXPECT_GT(delivered, delivered_mid);  // post-heal traffic flows again
}

TEST_F(InjectorTest, ChaosPerturbationsAreDeterministicUnderFixedSeed) {
  struct Outcome {
    uint64_t dropped, duplicated, reordered, dup_suppressed, delivered;
  };
  auto run = [](uint64_t seed) {
    Simulation sim;
    OverlayNetwork net(&sim);
    AuroraStarSystem system(&sim, &net, StarOptions{});
    NodeId a = *system.AddNode(NodeOptions{"a", 1.0, {}});
    NodeId b = *system.AddNode(NodeOptions{"b", 1.0, {}});
    net.FullMesh(LinkOptions{});
    GlobalQuery q;
    EXPECT_OK(q.AddInput("in", SchemaAB()));
    EXPECT_OK(q.AddBox("f", FilterSpec(Predicate::True())));
    EXPECT_OK(q.AddBox("t", TumbleSpec("cnt", "B", {"A"})));
    EXPECT_OK(q.AddOutput("out"));
    EXPECT_OK(q.ConnectInputToBox("in", "f"));
    EXPECT_OK(q.ConnectBoxes("f", 0, "t", 0));
    EXPECT_OK(q.ConnectBoxToOutput("t", 0, "out"));
    auto deployed = DeployQuery(&system, q, {{"f", a}, {"t", b}});
    EXPECT_TRUE(deployed.ok());
    uint64_t delivered = 0;
    EXPECT_OK(system.CollectOutput(b, "out",
                                   [&](const Tuple&, SimTime) { ++delivered; }));
    for (int i = 0; i < 1500; ++i) {
      sim.ScheduleAt(SimTime::Millis(i), [&system, a, i]() {
        Tuple t = MakeTuple(SchemaAB(), {Value(i), Value(i)});
        (void)system.node(a).Inject("in", t);
      });
    }
    FaultPlan plan;
    plan.PerturbLinkAt(SimTime::Millis(0), a, b, /*drop_p=*/0.05,
                       /*dup_p=*/0.05, /*reorder_p=*/0.1);
    InjectorOptions iopts;
    iopts.seed = seed;
    Injector injector(&system, plan, iopts);
    EXPECT_OK(injector.Arm());
    sim.RunUntil(SimTime::Seconds(3));
    return Outcome{net.ChaosDropped(), net.ChaosDuplicated(),
                   net.ChaosReordered(),
                   system.node(b).duplicate_tuples_dropped(), delivered};
  };

  Outcome r1 = run(42);
  Outcome r2 = run(42);
  // Bit-reproducible: identical seeds give identical chaos draws and
  // therefore identical end-to-end outcomes.
  EXPECT_EQ(r1.dropped, r2.dropped);
  EXPECT_EQ(r1.duplicated, r2.duplicated);
  EXPECT_EQ(r1.reordered, r2.reordered);
  EXPECT_EQ(r1.dup_suppressed, r2.dup_suppressed);
  EXPECT_EQ(r1.delivered, r2.delivered);
  // The chaos actually bit.
  EXPECT_GT(r1.dropped, 0u);
  EXPECT_GT(r1.duplicated, 0u);
  EXPECT_GT(r1.reordered, 0u);
  // Duplicated batches were suppressed by the per-stream dedup watermark.
  EXPECT_GT(r1.dup_suppressed, 0u);
  // A different seed draws a different chaos trajectory.
  Outcome r3 = run(43);
  EXPECT_TRUE(r3.dropped != r1.dropped || r3.duplicated != r1.duplicated ||
              r3.reordered != r1.reordered);
}

TEST_F(InjectorTest, MessagesToDownNodesCountedUnderDroppedDown) {
  DeployedQuery deployed = DeployChain();
  InjectTimed(0, 1000);
  FaultPlan plan;
  plan.CrashAt(SimTime::Millis(300), s2_);
  Injector injector(system_.get(), plan, InjectorOptions{});
  ASSERT_OK(injector.Arm());
  sim_.RunUntil(SimTime::Seconds(2));
  // s1 keeps sending to the dead s2; every such message lands in the
  // dedicated dropped_down counter (satellite: no more silent drops).
  EXPECT_GT(net_->MessagesDroppedDown(), 0u);
  EXPECT_GE(net_->MessagesDropped(), net_->MessagesDroppedDown());
}

TEST_F(InjectorTest, SlowNodeScalesCpuSpeed) {
  DeployedQuery deployed = DeployChain();
  FaultPlan plan;
  plan.SlowNodeAt(SimTime::Millis(100), s2_, 0.25);
  Injector injector(system_.get(), plan, InjectorOptions{});
  ASSERT_OK(injector.Arm());
  sim_.RunUntil(SimTime::Millis(200));
  EXPECT_EQ(injector.slowdowns(), 1);
  EXPECT_DOUBLE_EQ(system_->node(s2_).speed(), 0.25);
}

TEST_F(InjectorTest, ArmTwiceFailsAndPastEventsRejected) {
  FaultPlan plan;
  plan.CrashAt(SimTime::Millis(100), s1_);
  Injector injector(system_.get(), plan, InjectorOptions{});
  ASSERT_OK(injector.Arm());
  EXPECT_FALSE(injector.Arm().ok());

  sim_.RunUntil(SimTime::Millis(500));
  FaultPlan late;
  late.CrashAt(SimTime::Millis(200), s2_);  // already in the past
  Injector injector2(system_.get(), late, InjectorOptions{});
  EXPECT_FALSE(injector2.Arm().ok());
}

}  // namespace
}  // namespace aurora
