// Credit-based flow control under faults (see docs/FLOW_CONTROL.md): a
// slowed or partitioned downstream node must bound the sender's transport
// queue to the credit budget, push back all the way to Inject(), and — after
// the fault heals — deliver every accepted tuple exactly once.
#include <gtest/gtest.h>

#include "fault/injector.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::GetInt;
using testing_util::SchemaAB;

constexpr size_t kWindowBytes = 2048;
// The sender may overshoot the window by one flush chunk (window/4, see
// StreamNode::FlushPending) plus a tuple that straddles the chunk cap.
constexpr size_t kQueueMargin = kWindowBytes / 4 + 128;

// a: in -> "xout" (remote);  b: "xin" -> costly filter -> "final".
class FlowControlChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StarOptions opts;
    opts.transport.credit_window_bytes = kWindowBytes;
    opts.transport.train_size = 8;
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    system_ = std::make_unique<AuroraStarSystem>(&sim_, net_.get(), opts);
    ASSERT_OK_AND_ASSIGN(a_, system_->AddNode(NodeOptions{"a", 1.0, {}}));
    ASSERT_OK_AND_ASSIGN(b_, system_->AddNode(NodeOptions{"b", 1.0, {}}));
    ASSERT_OK(net_->AddLink(a_, b_, LinkOptions{}));

    AuroraEngine& ae = system_->node(a_).engine();
    PortId in = *ae.AddInput("in", SchemaAB());
    PortId out = *ae.AddOutput("xout");
    ASSERT_OK(ae.Connect(Endpoint::InputPort(in),
                         Endpoint::OutputPort(out)).status());
    ASSERT_OK(ae.InitializeBoxes());

    AuroraEngine& be = system_->node(b_).engine();
    PortId bin = *be.AddInput("xin", SchemaAB());
    PortId bout = *be.AddOutput("final");
    OperatorSpec work = FilterSpec(Predicate::True());
    work.SetParam("cost_us", Value(300.0));  // b saturates when slowed
    BoxId f = *be.AddBox(work);
    ASSERT_OK(be.Connect(Endpoint::InputPort(bin),
                         Endpoint::BoxPort(f, 0)).status());
    ASSERT_OK(be.Connect(Endpoint::BoxPort(f, 0),
                         Endpoint::OutputPort(bout)).status());
    ASSERT_OK(be.InitializeBoxes());
    be.SetOutputCallback(bout, [this](const Tuple& t, SimTime) {
      received_.push_back(t);
    });
    ASSERT_OK(system_->ConnectRemote(a_, "xout", b_, "xin").status());
  }

  /// Schedules one inject per millisecond over [lo, hi); tallies accepts
  /// and flow-control rejections separately.
  void InjectTimed(int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      sim_.ScheduleAt(SimTime::Millis(i), [this, i]() {
        Tuple t = MakeTuple(SchemaAB(), {Value(i), Value(i)});
        Status st = system_->node(a_).Inject("in", t);
        if (st.ok()) {
          accepted_++;
        } else if (st.IsUnavailable()) {
          rejected_++;
        }
      });
    }
  }

  /// Every delivered tuple carries the stream's send-time sequence number;
  /// exactly-once delivery of all accepted tuples means the received
  /// sequence is 1..accepted_ with no gap and no repeat.
  void ExpectExactlyOnceDelivery() {
    ASSERT_EQ(received_.size(), accepted_);
    for (size_t i = 0; i < received_.size(); ++i) {
      EXPECT_EQ(received_[i].seq(), i + 1);
    }
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> system_;
  std::vector<Tuple> received_;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
  NodeId a_ = -1, b_ = -1;
};

TEST_F(FlowControlChaosTest, SlowReceiverBoundsSenderQueueAndPushesBack) {
  InjectTimed(0, 3000);
  FaultPlan plan;
  plan.SlowNodeAt(SimTime::Millis(100), b_, 0.05);
  Injector injector(system_.get(), plan, InjectorOptions{});
  ASSERT_OK(injector.Arm());

  sim_.RunUntil(SimTime::Millis(2500));
  const Transport* tx = system_->node(a_).PeerTransport(b_);
  ASSERT_NE(tx, nullptr);
  // The slowed receiver stops granting; the sender stalls instead of
  // queueing unboundedly (margin: one in-flight batch past the window).
  EXPECT_GE(tx->credit_stalls(), 1u);
  EXPECT_LE(tx->peak_queued_payload_bytes(), kWindowBytes + kQueueMargin);
  // Back-pressure reached the source: Inject() saw "blocked upstream".
  EXPECT_GT(rejected_, 0u);
  EXPECT_GT(accepted_, 0u);

  // Give the slow receiver time to drain everything it ever credited.
  sim_.RunUntil(SimTime::Seconds(120));
  ExpectExactlyOnceDelivery();
  EXPECT_EQ(system_->node(b_).duplicate_tuples_dropped(), 0u);
}

TEST_F(FlowControlChaosTest, PartitionPausesThenHealDeliversExactlyOnce) {
  InjectTimed(0, 3000);
  FaultPlan plan;
  plan.PartitionAt(SimTime::Millis(500), a_, b_)
      .HealAt(SimTime::Millis(1500), a_, b_);
  Injector injector(system_.get(), plan, InjectorOptions{});
  ASSERT_OK(injector.Arm());

  sim_.RunUntil(SimTime::Millis(1400));
  EXPECT_EQ(injector.partitions(), 1);
  const Transport* tx = system_->node(a_).PeerTransport(b_);
  ASSERT_NE(tx, nullptr);
  // Mid-partition: credit ran out, the transport holds (bounded) rather
  // than dropping, and the source is being refused.
  EXPECT_LE(tx->peak_queued_payload_bytes(), kWindowBytes + kQueueMargin);
  EXPECT_TRUE(system_->node(a_).flow_blocked());
  EXPECT_GT(rejected_, 0u);
  size_t received_mid = received_.size();

  sim_.RunUntil(SimTime::Seconds(30));
  EXPECT_EQ(injector.heals(), 1);
  EXPECT_GT(received_.size(), received_mid);  // post-heal traffic resumed
  // Everything accepted before, during, and after the partition arrived
  // exactly once — nothing was lost on the dead path, nothing re-sent
  // twice (credit probes heal lost grants without duplicating data).
  ExpectExactlyOnceDelivery();
  EXPECT_EQ(system_->node(b_).duplicate_tuples_dropped(), 0u);
}

}  // namespace
}  // namespace aurora
