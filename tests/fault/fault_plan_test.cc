// FaultPlan text-spec parsing, builder equivalence, and time ordering.
#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

TEST(FaultPlanTest, ParsesEveryEventKind) {
  ASSERT_OK_AND_ASSIGN(FaultPlan plan, FaultPlan::Parse(R"(
# chaos schedule shared by benches and tests
at 0ms  perturb 0 1 drop=0.05 dup=0.02 reorder=0.1 reorder_delay=20ms
at 500ms crash 2
at 900ms restart 2
at 1s   partition 0 1
at 2s   heal 0 1
at 1s   slow 1 0.5
)"));
  ASSERT_EQ(plan.size(), 6u);
  const auto& ev = plan.events();
  EXPECT_EQ(ev[0].kind, FaultEventKind::kPerturbLink);
  EXPECT_DOUBLE_EQ(ev[0].drop_p, 0.05);
  EXPECT_DOUBLE_EQ(ev[0].dup_p, 0.02);
  EXPECT_DOUBLE_EQ(ev[0].reorder_p, 0.1);
  EXPECT_EQ(ev[0].reorder_delay.micros(), 20000);
  EXPECT_EQ(ev[1].kind, FaultEventKind::kCrash);
  EXPECT_EQ(ev[1].node, 2);
  EXPECT_EQ(ev[1].at, SimTime::Millis(500));
  EXPECT_EQ(ev[2].kind, FaultEventKind::kRestart);
  // Equal times keep spec order (stable sort): partition before slow.
  EXPECT_EQ(ev[3].kind, FaultEventKind::kPartition);
  EXPECT_EQ(ev[3].a, 0);
  EXPECT_EQ(ev[3].b, 1);
  EXPECT_EQ(ev[4].kind, FaultEventKind::kSlowNode);
  EXPECT_DOUBLE_EQ(ev[4].speed_factor, 0.5);
  EXPECT_EQ(ev[5].kind, FaultEventKind::kHeal);
}

TEST(FaultPlanTest, EventsSortByTimeNotSpecOrder) {
  ASSERT_OK_AND_ASSIGN(FaultPlan plan, FaultPlan::Parse(
                                           "at 2s crash 1\n"
                                           "at 1s crash 0\n"));
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events()[0].node, 0);
  EXPECT_EQ(plan.events()[1].node, 1);
}

TEST(FaultPlanTest, BuilderMatchesParser) {
  ASSERT_OK_AND_ASSIGN(FaultPlan parsed, FaultPlan::Parse(
                                             "at 500ms crash 2\n"
                                             "at 1500ms restart 2\n"));
  FaultPlan built;
  built.CrashAt(SimTime::Millis(500), 2).RestartAt(SimTime::Millis(1500), 2);
  ASSERT_EQ(built.size(), parsed.size());
  for (size_t i = 0; i < built.size(); ++i) {
    EXPECT_EQ(built.events()[i].kind, parsed.events()[i].kind);
    EXPECT_EQ(built.events()[i].at, parsed.events()[i].at);
    EXPECT_EQ(built.events()[i].node, parsed.events()[i].node);
  }
}

TEST(FaultPlanTest, ToSpecRoundTrips) {
  FaultPlan plan;
  plan.PerturbLinkAt(SimTime::Millis(0), 0, 1, 0.05, 0.02, 0.1)
      .CrashAt(SimTime::Millis(500), 2)
      .PartitionAt(SimTime::Seconds(1), 0, 1)
      .HealAt(SimTime::Seconds(2), 0, 1)
      .SlowNodeAt(SimTime::Seconds(3), 1, 0.25)
      .RestartAt(SimTime::Seconds(4), 2);
  ASSERT_OK_AND_ASSIGN(FaultPlan reparsed, FaultPlan::Parse(plan.ToSpec()));
  ASSERT_EQ(reparsed.size(), plan.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    const FaultEvent& a = plan.events()[i];
    const FaultEvent& b = reparsed.events()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.a, b.a);
    EXPECT_EQ(a.b, b.b);
    EXPECT_DOUBLE_EQ(a.drop_p, b.drop_p);
    EXPECT_DOUBLE_EQ(a.dup_p, b.dup_p);
    EXPECT_DOUBLE_EQ(a.reorder_p, b.reorder_p);
    EXPECT_DOUBLE_EQ(a.speed_factor, b.speed_factor);
  }
}

TEST(FaultPlanTest, RejectsMalformedLines) {
  EXPECT_FALSE(FaultPlan::Parse("crash 2").ok());          // missing "at"
  EXPECT_FALSE(FaultPlan::Parse("at 500 crash 2").ok());   // no time unit
  EXPECT_FALSE(FaultPlan::Parse("at 1s explode 2").ok());  // unknown verb
  EXPECT_FALSE(FaultPlan::Parse("at 1s crash").ok());      // missing operand
  EXPECT_FALSE(
      FaultPlan::Parse("at 0s perturb 0 1 drop=1.5").ok());  // p > 1
  // Errors carry the offending line number.
  Status st = FaultPlan::Parse("at 1s crash 0\nat 2s explode 1\n").status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st.ToString();
}

TEST(FaultPlanTest, IgnoresCommentsAndBlankLines) {
  ASSERT_OK_AND_ASSIGN(FaultPlan plan, FaultPlan::Parse(
                                           "\n# only a comment\n\n"
                                           "at 1s crash 0  # trailing\n"));
  EXPECT_EQ(plan.size(), 1u);
}

}  // namespace
}  // namespace aurora
