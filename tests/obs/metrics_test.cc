// Unit tests for the observability layer (src/obs): histogram quantile
// correctness, registry registration semantics, snapshot export, and an
// end-to-end check that the network layer's registered series match the
// layer's own statistics.
#include <gtest/gtest.h>

#include <string>

#include "net/transport.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

TEST(LatencyHistogramTest, UniformQuantiles) {
  LatencyHistogram h;
  for (int v = 1; v <= 1000; ++v) h.Record(static_cast<double>(v));

  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);

  // Log buckets with growth 1.15 bound relative error to ~15% before
  // interpolation; allow that.
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 80.0);
  EXPECT_NEAR(h.Quantile(0.95), 950.0, 150.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
}

TEST(LatencyHistogramTest, QuantilesAreMonotone) {
  LatencyHistogram h;
  for (int v = 1; v <= 1000; ++v) h.Record(static_cast<double>(v * v % 977));
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    double val = h.Quantile(q);
    EXPECT_GE(val, prev) << "quantile " << q;
    EXPECT_LE(val, h.max());
    prev = val;
  }
}

TEST(LatencyHistogramTest, ConstantDistribution) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(42.0);
  // Clamping to the observed [min, max] makes every quantile exact here.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 42.0);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(LatencyHistogramTest, EmptyAndReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  h.Record(3.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(MetricsRegistryTest, RegistrationReturnsStablePointers) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c1 = reg.GetCounter("test.reg.counter");
  c1->Add(5);
  Counter* c2 = reg.GetCounter("test.reg.counter");
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c2->value(), 5u);

  Gauge* g = reg.GetGauge("test.reg.gauge");
  g->Set(3.0);
  g->Set(1.0);
  EXPECT_EQ(reg.GetGauge("test.reg.gauge"), g);
  EXPECT_DOUBLE_EQ(g->value(), 1.0);
  EXPECT_DOUBLE_EQ(g->max(), 3.0);

  EXPECT_EQ(reg.FindCounter("test.reg.counter"), c1);
  EXPECT_EQ(reg.FindCounter("test.reg.never_registered"), nullptr);
}

TEST(MetricsRegistryTest, ResetKeepsRegistrationsAndZeroesValues) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.reset.counter");
  LatencyHistogram* h = reg.GetHistogram("test.reset.hist");
  c->Add(7);
  h->Record(1.25);
  size_t before = reg.num_metrics();

  reg.Reset();

  EXPECT_EQ(reg.num_metrics(), before);  // registrations survive
  EXPECT_EQ(reg.GetCounter("test.reset.counter"), c);  // pointer stable
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
}

TEST(MetricsRegistryTest, SnapshotRoundTrip) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.snap.counter")->Add(12);
  reg.GetGauge("test.snap.gauge")->Set(2.5);
  reg.GetHistogram("test.snap.hist")->Record(10.0);

  std::string json = reg.SnapshotJson();
  EXPECT_NE(json.find("\"test.snap.counter\": 12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.snap.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.snap.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  std::string csv = reg.SnapshotCsv();
  EXPECT_NE(csv.find("name,type,field,value"), std::string::npos);
  EXPECT_NE(csv.find("test.snap.counter,counter,value,12"), std::string::npos)
      << csv;
  EXPECT_NE(csv.find("test.snap.hist,histogram,count,1"), std::string::npos);
}

// End-to-end: a transport run registers per-link byte counters and a
// queueing-delay histogram whose quantiles are sane (the ISSUE's acceptance
// scenario, in miniature).
TEST(MetricsIntegrationTest, TransportRunPopulatesRegistry) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.Reset();

  Simulation sim;
  OverlayNetwork net(&sim);
  net.AddNode(NodeOptions{"a", 1.0, {}});
  net.AddNode(NodeOptions{"b", 1.0, {}});
  LinkOptions link;
  link.bandwidth_bytes_per_sec = 50'000;  // slow link => real queueing delay
  ASSERT_OK(net.AddLink(0, 1, link));

  TransportOptions opts;
  Transport tx(&sim, &net, 0, 1, opts);
  ASSERT_OK(tx.RegisterStream("s", 1.0));
  for (int i = 0; i < 50; ++i) {
    Message m;
    m.kind = "t";
    m.payload.resize(200);
    ASSERT_OK(tx.Send("s", std::move(m)));
  }
  sim.RunUntil(SimTime::Seconds(2));

  const Counter* bytes = reg.FindCounter("net.link.0->1.bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_GT(bytes->value(), 0u);
  EXPECT_EQ(bytes->value(), net.LinkBytesSent(0, 1));

  const Counter* wire = reg.FindCounter("net.transport.0->1.wire_bytes");
  ASSERT_NE(wire, nullptr);
  EXPECT_EQ(wire->value(), tx.total_wire_bytes());

  const LatencyHistogram* delay =
      reg.FindHistogram("net.transport.queue_delay_us");
  ASSERT_NE(delay, nullptr);
  EXPECT_GT(delay->count(), 0u);
  EXPECT_LE(delay->Quantile(0.5), delay->Quantile(0.99));

  std::string json = reg.SnapshotJson();
  EXPECT_NE(json.find("net.link.0->1.bytes"), std::string::npos);
  EXPECT_NE(json.find("net.transport.queue_delay_us"), std::string::npos);
}

}  // namespace
}  // namespace aurora
