// Anomaly flight recorder (obs/flight_recorder.h): dumps snapshot the
// tracer's tail + metrics once per event kind, and the real trigger points
// fire — a QoS violation names its bottleneck stage in the dump detail,
// and an injected node crash produces a node_crash dump.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "distributed/deployment.h"
#include "engine/aurora_engine.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "qos/qos_spec.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

/// Captured (path, json) pairs from a test sink.
struct CapturedDump {
  std::string path;
  std::string json;
};

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    Tracer::Global().Clear();
    Tracer::Global().set_enabled(true);
    FlightRecorder& fr = FlightRecorder::Global();
    fr.Rearm();
    fr.set_enabled(true);
    fr.set_sink([this](const std::string& path, const std::string& json) {
      dumps_.push_back({path, json});
    });
  }
  void TearDown() override {
    FlightRecorder& fr = FlightRecorder::Global();
    fr.set_sink(FlightRecorder::Sink{});  // restore the file-writing default
    fr.set_enabled(false);
    fr.Rearm();
    Tracer::Global().set_enabled(false);
    Tracer::Global().Clear();
    MetricsRegistry::Global().Reset();
  }

  std::vector<CapturedDump> dumps_;
};

TEST_F(FlightRecorderTest, DumpSnapshotsTailAndLatchesPerEventKind) {
  Tracer& tracer = Tracer::Global();
  uint64_t id = tracer.NextTraceId();
  tracer.Record({id, SpanKind::kEnqueue, 0, "in:in", 10, 10});
  tracer.Record({id, SpanKind::kDelivery, 0, "out:out", 30, 30});

  FlightRecorder& fr = FlightRecorder::Global();
  const uint64_t dumps_before = fr.dumps();
  EXPECT_TRUE(fr.Trigger("qos_violation", "out=\"out\"", 30));
  EXPECT_FALSE(fr.Trigger("qos_violation", "again", 31)) << "latched";
  EXPECT_TRUE(fr.Trigger("node_crash", "node=1", 40)) << "independent latch";
  fr.Rearm();
  EXPECT_TRUE(fr.Trigger("qos_violation", "after rearm", 50));
  ASSERT_EQ(dumps_.size(), 3u);

  EXPECT_EQ(dumps_[0].path, "obs_flight_qos_violation.json");
  ASSERT_OK_AND_ASSIGN(JsonValue doc,
                       JsonValue::Parse(dumps_[0].json));
  EXPECT_EQ(doc.StringOr("event", ""), "qos_violation");
  EXPECT_EQ(doc.StringOr("detail", ""), "out=\"out\"");
  EXPECT_EQ(doc.NumberOr("sim_time_us", -1), 30);
  const JsonValue* spans = doc.FindArray("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->AsArray().size(), 2u);
  EXPECT_EQ(spans->AsArray()[0].StringOr("kind", ""), "enqueue");
  EXPECT_EQ(spans->AsArray()[1].StringOr("site", ""), "out:out");
  // The metrics snapshot rides along, parseable by the same machinery
  // aurora_inspect --diff uses.
  ASSERT_NE(doc.FindObject("metrics"), nullptr);
  EXPECT_EQ(fr.dumps() - dumps_before, 3u);
}

TEST_F(FlightRecorderTest, DisabledRecorderNeverDumps) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.set_enabled(false);
  EXPECT_FALSE(fr.Trigger("qos_violation", "x", 1));
  EXPECT_TRUE(dumps_.empty());
}

TEST_F(FlightRecorderTest, QoSViolationTriggersDumpNamingBottleneckStage) {
  AuroraEngine engine;
  PortId in = *engine.AddInput("in", SchemaAB());
  PortId out = *engine.AddOutput("out");
  ASSERT_TRUE(engine.Connect(Endpoint::InputPort(in),
                             Endpoint::OutputPort(out)).ok());
  ASSERT_OK(engine.InitializeBoxes());
  QoSSpec spec;
  spec.latency = *UtilityGraph::Make({{10, 1.0}, {20, 0.0}});
  ASSERT_OK(engine.SetOutputQoS(out, spec));

  // A tuple stamped at t=1us delivered at t=100ms: ~100ms latency against
  // a 20ms knee -> utility 0 -> violation.
  SchemaPtr schema = SchemaAB();
  Tuple t = MakeTuple(schema, {Value(1), Value(2)});
  t.set_timestamp(SimTime::Micros(1));
  ASSERT_OK(engine.PushInput(in, std::move(t), SimTime::Micros(100'000)));
  ASSERT_OK(engine.RunUntilQuiescent(SimTime::Micros(100'000)));

  EXPECT_GE(engine.qos_monitor().Violations(out), 1u);
  ASSERT_EQ(dumps_.size(), 1u);
  EXPECT_EQ(dumps_[0].path, "obs_flight_qos_violation.json");
  // Tracing was on, so the violation names its dominant (bottleneck) stage.
  EXPECT_NE(dumps_[0].json.find("dominant="), std::string::npos)
      << dumps_[0].json.substr(0, 200);
}

TEST_F(FlightRecorderTest, InjectedNodeCrashTriggersDump) {
  Simulation sim;
  auto net = std::make_unique<OverlayNetwork>(&sim);
  auto system =
      std::make_unique<AuroraStarSystem>(&sim, net.get(), StarOptions{});
  ASSERT_OK_AND_ASSIGN(NodeId n0, system->AddNode(NodeOptions{"n0", 1.0, {}}));
  ASSERT_OK_AND_ASSIGN(NodeId n1, system->AddNode(NodeOptions{"n1", 1.0, {}}));
  ASSERT_OK(net->AddLink(n0, n1, LinkOptions{}));

  system->node(n1).Crash();

  ASSERT_EQ(dumps_.size(), 1u);
  EXPECT_EQ(dumps_[0].path, "obs_flight_node_crash.json");
  ASSERT_OK_AND_ASSIGN(JsonValue doc, JsonValue::Parse(dumps_[0].json));
  EXPECT_EQ(doc.StringOr("event", ""), "node_crash");
  EXPECT_NE(doc.StringOr("detail", "").find("node="), std::string::npos);
}

}  // namespace
}  // namespace aurora
