// Tuple-lineage tracing across a two-node deployment: a traced tuple's
// spans must appear in causal sim-time order — enqueue and box execution on
// the first node, then the transport hop, processing, and delivery on the
// second (the ISSUE's acceptance scenario).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "distributed/deployment.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<OverlayNetwork>(&sim_);
    system_ =
        std::make_unique<AuroraStarSystem>(&sim_, net_.get(), StarOptions{});
    Tracer::Global().Clear();
    Tracer::Global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::Global().set_enabled(false);
    Tracer::Global().Clear();
  }

  Simulation sim_;
  std::unique_ptr<OverlayNetwork> net_;
  std::unique_ptr<AuroraStarSystem> system_;
};

TEST_F(TraceTest, SpansAreCausallyOrderedAcrossTwoNodes) {
  ASSERT_OK_AND_ASSIGN(NodeId n0, system_->AddNode(NodeOptions{"n0", 1.0, {}}));
  ASSERT_OK_AND_ASSIGN(NodeId n1, system_->AddNode(NodeOptions{"n1", 1.0, {}}));
  ASSERT_OK(net_->AddLink(n0, n1, LinkOptions{}));

  GlobalQuery q;
  ASSERT_OK(q.AddInput("in", SchemaAB()));
  ASSERT_OK(q.AddBox("f", FilterSpec(Predicate::True())));
  ASSERT_OK(q.AddBox("m", MapSpec({{"A", Expr::FieldRef("A")},
                                   {"B", Expr::FieldRef("B")}})));
  ASSERT_OK(q.AddOutput("out"));
  ASSERT_OK(q.ConnectInputToBox("in", "f"));
  ASSERT_OK(q.ConnectBoxes("f", 0, "m", 0));
  ASSERT_OK(q.ConnectBoxToOutput("m", 0, "out"));
  ASSERT_OK_AND_ASSIGN(DeployedQuery deployed,
                       DeployQuery(system_.get(), q, {{"f", n0}, {"m", n1}}));

  std::vector<uint64_t> delivered_ids;
  ASSERT_OK(system_->CollectOutput(n1, "out", [&](const Tuple& t, SimTime) {
    delivered_ids.push_back(t.trace_id());
  }));

  SchemaPtr schema = SchemaAB();
  for (int i = 0; i < 3; ++i) {
    Tuple t = MakeTuple(schema, {Value(i), Value(i + 1)});
    ASSERT_OK(system_->node(n0).Inject("in", t));
  }
  sim_.RunFor(SimDuration::Seconds(2));

  ASSERT_EQ(delivered_ids.size(), 3u);
  for (uint64_t id : delivered_ids) {
    ASSERT_NE(id, 0u) << "delivered tuple lost its trace id";
    std::vector<TraceSpan> spans = Tracer::Global().SpansFor(id);
    ASSERT_GE(spans.size(), 5u);

    // Causal sim-time order end to end.
    for (size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].start_us, spans[i - 1].start_us)
          << "span " << i << " (" << SpanKindName(spans[i].kind)
          << ") out of order";
    }

    // Stage sequence: source enqueue + filter exec on node 0, then the hop
    // to node 1, the map exec there, and final delivery on node 1.
    EXPECT_EQ(spans.front().kind, SpanKind::kEnqueue);
    EXPECT_EQ(spans.front().node, n0);
    EXPECT_EQ(spans.front().site, "in:in");
    EXPECT_EQ(spans.back().kind, SpanKind::kDelivery);
    EXPECT_EQ(spans.back().node, n1);

    auto index_of = [&](SpanKind kind, int node) -> int {
      for (size_t i = 0; i < spans.size(); ++i) {
        if (spans[i].kind == kind && spans[i].node == node) {
          return static_cast<int>(i);
        }
      }
      return -1;
    };
    int exec0 = index_of(SpanKind::kBoxExec, n0);
    int hop1 = index_of(SpanKind::kTransportHop, n1);
    int exec1 = index_of(SpanKind::kBoxExec, n1);
    ASSERT_GE(exec0, 0) << "no box execution recorded on node 0";
    ASSERT_GE(hop1, 0) << "no transport hop recorded at node 1";
    ASSERT_GE(exec1, 0) << "no box execution recorded on node 1";
    EXPECT_LT(exec0, hop1);
    EXPECT_LT(hop1, exec1);
    EXPECT_EQ(spans[exec0].site, "box:filter");
    EXPECT_EQ(spans[exec1].site, "box:map");
    EXPECT_EQ(spans[hop1].site.rfind("stream:", 0), 0u)
        << "hop site: " << spans[hop1].site;
  }

  // Distinct source tuples get distinct lineage ids.
  EXPECT_NE(delivered_ids[0], delivered_ids[1]);
  EXPECT_NE(delivered_ids[1], delivered_ids[2]);
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::Global().set_enabled(false);
  Tracer::Global().Record(
      {1, SpanKind::kEnqueue, 0, "in:x", 0, 0});
  EXPECT_EQ(Tracer::Global().size(), 0u);
}

TEST_F(TraceTest, CapacityBoundDropsExcessSpans) {
  Tracer& tracer = Tracer::Global();
  size_t old_cap = tracer.capacity();
  tracer.set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    tracer.Record({1, SpanKind::kEnqueue, 0, "in:x", i, i});
  }
  EXPECT_EQ(tracer.SnapshotSpans().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
  tracer.set_capacity(old_cap);
}

TEST_F(TraceTest, RingEvictsOldestFirstAndKeepsRecordOrder) {
  Tracer& tracer = Tracer::Global();
  size_t old_cap = tracer.capacity();
  tracer.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    tracer.Record({static_cast<uint64_t>(i + 1), SpanKind::kEnqueue, 0, "in:x",
                   i, i});
  }
  // The newest 4 spans survive, oldest first.
  std::vector<TraceSpan> spans = tracer.SnapshotSpans();
  ASSERT_EQ(spans.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].trace_id, static_cast<uint64_t>(i + 7));
    EXPECT_EQ(spans[i].start_us, i + 6);
  }
  EXPECT_EQ(tracer.dropped(), 6u);
  // TailSpans slices from the newest end, preserving order.
  std::vector<TraceSpan> tail = tracer.TailSpans(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].trace_id, 9u);
  EXPECT_EQ(tail[1].trace_id, 10u);
  // Shrinking keeps the newest spans that still fit.
  tracer.set_capacity(2);
  spans = tracer.SnapshotSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, 9u);
  EXPECT_EQ(spans[1].trace_id, 10u);
  tracer.set_capacity(old_cap);
}

TEST_F(TraceTest, SamplingIsDeterministicOnIssuanceOrder) {
  Tracer& tracer = Tracer::Global();
  tracer.set_sample_period(3);
  // Every 3rd issuance gets a fresh id; the pattern depends only on the
  // issuance counter, so two identical workloads sample identically.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 9; ++i) ids.push_back(tracer.NewTrace());
  int sampled = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_NE(ids[i], 0u) << "issuance " << i << " should be sampled";
      sampled++;
    } else {
      EXPECT_EQ(ids[i], 0u) << "issuance " << i << " should be sampled out";
    }
  }
  EXPECT_EQ(sampled, 3);
  // Sampled ids stay dense and monotone (no gaps for sampled-out tuples).
  EXPECT_EQ(ids[3], ids[0] + 1);
  EXPECT_EQ(ids[6], ids[0] + 2);
  tracer.set_sample_period(1);
}

TEST_F(TraceTest, SpanKindNamesRoundTripEveryValue) {
  for (int i = 0; i < kNumSpanKinds; ++i) {
    SpanKind kind = static_cast<SpanKind>(i);
    const char* name = SpanKindName(kind);
    ASSERT_STRNE(name, "?") << "SpanKind " << i << " has no name";
    SpanKind back = SpanKind::kEnqueue;
    ASSERT_TRUE(SpanKindFromName(name, &back))
        << "SpanKindFromName rejects '" << name << "'";
    EXPECT_EQ(back, kind) << "round trip changed '" << name << "'";
  }
  SpanKind out = SpanKind::kEnqueue;
  EXPECT_FALSE(SpanKindFromName("not_a_span_kind", &out));
}

}  // namespace
}  // namespace aurora
