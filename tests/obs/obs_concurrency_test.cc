// Thread-safety of the observability layer under the threaded runtime:
// counters/gauges must not lose increments, the tracer ring must accept
// concurrent Records, and the flight-recorder latch must fire exactly once
// per event no matter how many threads hit the trigger simultaneously.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aurora {
namespace {

constexpr int kThreads = 8;
constexpr int kIters = 10000;

TEST(ObsConcurrencyTest, CounterAddsFromManyThreadsSumExactly) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("conc.counter");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, c] {
      // Half the adds go through the shared pointer, half re-resolve the
      // name — registration must be safe concurrently with updates.
      Counter* mine = reg.GetCounter("conc.counter");
      for (int i = 0; i < kIters; ++i) {
        (i % 2 == 0 ? c : mine)->Add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kIters);
}

TEST(ObsConcurrencyTest, GaugeMaxTracksGlobalMaximumAcrossThreads) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("conc.gauge");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([g, t] {
      for (int i = 0; i < kIters; ++i) {
        g->Set(static_cast<double>(t * kIters + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g->max(), static_cast<double>(kThreads * kIters - 1));
}

TEST(ObsConcurrencyTest, RegistrationRacesYieldOneMetricPerName) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      seen[t] = reg.GetCounter("conc.same_name");
      seen[t]->Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), static_cast<uint64_t>(kThreads));
}

TEST(ObsConcurrencyTest, TracerAcceptsConcurrentRecordsWithoutLoss) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_capacity(kThreads * kIters);  // nothing should be evicted
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kIters; ++i) {
        TraceSpan span;
        span.trace_id = tracer.NextTraceId();
        span.node = t;
        tracer.Record(span);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracer.size(), static_cast<size_t>(kThreads) * kIters);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ObsConcurrencyTest, FlightRecorderLatchFiresExactlyOncePerEvent) {
  FlightRecorder recorder;
  recorder.set_enabled(true);
  std::atomic<int> dumps{0};
  recorder.set_sink([&dumps](const std::string&, const std::string&) {
    dumps.fetch_add(1);
  });
  std::vector<std::thread> threads;
  std::atomic<int> fired{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, &fired] {
      for (int i = 0; i < 100; ++i) {
        if (recorder.Trigger("conc_event", "thread race", i)) {
          fired.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(dumps.load(), 1);
  EXPECT_EQ(recorder.dumps(), 1u);

  // After Rearm the event may fire once more — still exactly once.
  recorder.Rearm();
  EXPECT_TRUE(recorder.Trigger("conc_event", "second episode", 1));
  EXPECT_EQ(recorder.dumps(), 2u);
}

}  // namespace
}  // namespace aurora
