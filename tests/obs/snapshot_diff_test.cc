// Metrics snapshot-diff helper (obs/snapshot_diff.h): one struct backs
// both the benches' before/after deltas and `aurora_inspect --diff`, so a
// registry capture and a parse of the exported SnapshotJson() must agree.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "obs/snapshot_diff.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

class SnapshotDiffTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::Global().Reset(); }
  void TearDown() override { MetricsRegistry::Global().Reset(); }
};

TEST_F(SnapshotDiffTest, RegistryCaptureRoundTripsThroughExportedJson) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("t.count")->Add(42);
  reg.GetGauge("t.depth")->Set(7.5);
  LatencyHistogram* h = reg.GetHistogram("t.lat_us");
  h->Record(100);
  h->Record(300);

  MetricsSnapshot live = MetricsSnapshot::FromRegistry(reg);
  EXPECT_EQ(live.CounterOr("t.count"), 42u);
  EXPECT_DOUBLE_EQ(live.gauges.at("t.depth"), 7.5);
  EXPECT_EQ(live.histograms.at("t.lat_us").count, 2u);
  EXPECT_DOUBLE_EQ(live.histograms.at("t.lat_us").sum, 400.0);

  ASSERT_OK_AND_ASSIGN(MetricsSnapshot parsed,
                       MetricsSnapshot::FromJsonText(reg.SnapshotJson()));
  EXPECT_EQ(parsed.CounterOr("t.count"), 42u);
  EXPECT_DOUBLE_EQ(parsed.gauges.at("t.depth"), 7.5);
  EXPECT_EQ(parsed.histograms.at("t.lat_us").count, 2u);
  // SnapshotJson prints %.6g, so sums survive to ~6 significant digits.
  EXPECT_NEAR(parsed.histograms.at("t.lat_us").sum, 400.0, 1e-3);
  EXPECT_NEAR(parsed.histograms.at("t.lat_us").p50,
              live.histograms.at("t.lat_us").p50, 1e-3);
}

TEST_F(SnapshotDiffTest, BetweenReportsExactlyTheMetricsThatMoved) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* moved = reg.GetCounter("t.moved");
  reg.GetCounter("t.frozen")->Add(5);
  moved->Add(10);
  MetricsSnapshot before = MetricsSnapshot::FromRegistry(reg);

  moved->Add(7);
  reg.GetCounter("t.born")->Add(1);
  reg.GetHistogram("t.hist")->Record(3.0);
  MetricsSnapshot after = MetricsSnapshot::FromRegistry(reg);

  SnapshotDiff diff = SnapshotDiff::Between(before, after);
  EXPECT_FALSE(diff.empty());
  EXPECT_EQ(diff.changed.count("t.frozen"), 0u) << "unchanged metric leaked";
  EXPECT_DOUBLE_EQ(diff.CounterDelta("t.moved"), 7.0);
  EXPECT_DOUBLE_EQ(diff.CounterDelta("t.frozen"), 0.0);
  EXPECT_DOUBLE_EQ(diff.CounterDelta("t.absent"), 0.0);

  ASSERT_EQ(diff.changed.count("t.born"), 1u);
  EXPECT_TRUE(diff.changed.at("t.born").only_after);
  ASSERT_EQ(diff.changed.count("t.hist"), 1u);
  EXPECT_EQ(diff.changed.at("t.hist").kind, MetricDelta::Kind::kHistogram);
  EXPECT_DOUBLE_EQ(diff.changed.at("t.hist").delta, 1.0);

  std::string text = diff.ToText();
  EXPECT_NE(text.find("t.moved"), std::string::npos);
  EXPECT_EQ(text.find("t.frozen"), std::string::npos);

  // Identical snapshots diff empty.
  EXPECT_TRUE(SnapshotDiff::Between(after, after).empty());
}

TEST_F(SnapshotDiffTest, FromJsonAcceptsDocumentsEmbeddingMetrics) {
  // The flight-recorder dump shape: the snapshot lives under "metrics".
  const std::string doc = R"({
    "event": "qos_violation",
    "metrics": {
      "counters": {"a.b": 3},
      "gauges": {},
      "histograms": {}
    }
  })";
  ASSERT_OK_AND_ASSIGN(MetricsSnapshot snap,
                       MetricsSnapshot::FromJsonText(doc));
  EXPECT_EQ(snap.CounterOr("a.b"), 3u);

  EXPECT_FALSE(MetricsSnapshot::FromJsonText("not json").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJsonFile("/nonexistent/x.json").ok());
}

}  // namespace
}  // namespace aurora
