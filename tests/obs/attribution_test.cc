// Stage attribution (obs/attribution.h): the gap-based model's defining
// property is conservation — per delivery, the six stage buckets sum
// exactly to (delivery time - first enqueue time). Unit tests drive the
// attributor with synthetic lineages (including the kCreditWait
// start-predates-last-event case); the integration test runs a real
// two-node deployment and checks conservation on the registry histograms
// aurora_inspect reads.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "distributed/deployment.h"
#include "obs/attribution.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace aurora {
namespace {

using testing_util::SchemaAB;

int64_t StageSum(const StageBreakdown& b) {
  int64_t sum = 0;
  for (int i = 0; i < kNumStages; ++i) sum += b.stage_us[i];
  return sum;
}

class AttributionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    Tracer::Global().Clear();
    Tracer::Global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::Global().set_enabled(false);
    Tracer::Global().Clear();
    MetricsRegistry::Global().Reset();
  }
};

TEST_F(AttributionTest, StagesSumExactlyToEndToEnd) {
  LatencyAttributor attr;
  const uint64_t id = 7;
  attr.OnSpan({id, SpanKind::kEnqueue, 0, "in:in", 100, 100});
  // Box charged 20us of execution cost starting at 150.
  attr.OnSpan({id, SpanKind::kBoxExec, 0, "box:filter", 150, 170});
  // The binding blocked at 140 — before this tuple's last event — and
  // unblocked at 200; only the unblock moment closes the gap.
  attr.OnSpan({id, SpanKind::kCreditWait, 0, "credit:s", 140, 200});
  attr.OnSpan({id, SpanKind::kTransportHop, 1, "stream:xin", 230, 230});
  attr.OnSpan({id, SpanKind::kDelivery, 1, "out:final", 260, 260});

  const StageBreakdown* b = attr.last_delivery();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->trace_id, id);
  EXPECT_EQ(b->output, "final");
  EXPECT_EQ(b->total_us, 160);  // 260 - 100
  EXPECT_EQ(b->StageUs(Stage::kIngest), 0);
  EXPECT_EQ(b->StageUs(Stage::kQueue), 50);      // 100 -> 150
  EXPECT_EQ(b->StageUs(Stage::kExec), 20);       // charged cost, elapsed
  EXPECT_EQ(b->StageUs(Stage::kCredit), 30);     // 170 -> 200
  EXPECT_EQ(b->StageUs(Stage::kTransport), 30);  // 200 -> 230
  EXPECT_EQ(b->StageUs(Stage::kDeliver), 30);    // 230 -> 260
  EXPECT_EQ(StageSum(*b), b->total_us);
  EXPECT_EQ(b->dominant(), Stage::kQueue);
}

TEST_F(AttributionTest, ChargedExecCostNeverExceedsElapsedTime) {
  LatencyAttributor attr;
  const uint64_t id = 9;
  attr.OnSpan({id, SpanKind::kEnqueue, 0, "in:in", 0, 0});
  // Charged cost (990us) overruns the wall clock: delivery lands 50us in.
  attr.OnSpan({id, SpanKind::kBoxExec, 0, "box:map", 10, 1000});
  attr.OnSpan({id, SpanKind::kDelivery, 0, "out:o", 50, 50});

  const StageBreakdown* b = attr.last_delivery();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->total_us, 50);
  EXPECT_EQ(b->StageUs(Stage::kQueue), 10);
  EXPECT_EQ(b->StageUs(Stage::kExec), 40);  // capped at the elapsed gap
  EXPECT_EQ(b->StageUs(Stage::kDeliver), 0);
  EXPECT_EQ(StageSum(*b), b->total_us);
}

TEST_F(AttributionTest, ShedTerminatesLineageAndLiveStateIsBounded) {
  LatencyAttributor attr;
  attr.set_max_live(4);
  attr.OnSpan({1, SpanKind::kEnqueue, 0, "in:a", 10, 10});
  attr.OnSpan({1, SpanKind::kShed, 0, "shed:in:a", 20, 20});
  EXPECT_EQ(attr.live_traces(), 0u);
  // A later span for the dead lineage is ignored, not resurrected.
  attr.OnSpan({1, SpanKind::kDelivery, 0, "out:o", 30, 30});
  EXPECT_EQ(attr.last_delivery(), nullptr);

  // Live traces beyond max_live evict the oldest (smallest id).
  for (uint64_t id = 10; id < 20; ++id) {
    attr.OnSpan({id, SpanKind::kEnqueue, 0, "in:a",
                 static_cast<int64_t>(id), static_cast<int64_t>(id)});
  }
  EXPECT_EQ(attr.live_traces(), 4u);
  EXPECT_EQ(attr.evicted(), 6u);
  // Evicted trace 10 no longer attributes; surviving trace 19 does.
  attr.OnSpan({10, SpanKind::kDelivery, 0, "out:o", 100, 100});
  EXPECT_EQ(attr.last_delivery(), nullptr);
  attr.OnSpan({19, SpanKind::kDelivery, 0, "out:o", 100, 100});
  ASSERT_NE(attr.last_delivery(), nullptr);
  EXPECT_EQ(attr.last_delivery()->trace_id, 19u);
}

TEST_F(AttributionTest, RegistrySeriesConserveAcrossRealDeployment) {
  Simulation sim;
  auto net = std::make_unique<OverlayNetwork>(&sim);
  auto system =
      std::make_unique<AuroraStarSystem>(&sim, net.get(), StarOptions{});
  ASSERT_OK_AND_ASSIGN(NodeId n0, system->AddNode(NodeOptions{"n0", 1.0, {}}));
  ASSERT_OK_AND_ASSIGN(NodeId n1, system->AddNode(NodeOptions{"n1", 1.0, {}}));
  ASSERT_OK(net->AddLink(n0, n1, LinkOptions{}));

  GlobalQuery q;
  ASSERT_OK(q.AddInput("in", SchemaAB()));
  OperatorSpec costly = FilterSpec(Predicate::True());
  costly.SetParam("cost_us", Value(250.0));
  ASSERT_OK(q.AddBox("f", costly));
  ASSERT_OK(q.AddBox("m", MapSpec({{"A", Expr::FieldRef("A")},
                                   {"B", Expr::FieldRef("B")}})));
  ASSERT_OK(q.AddOutput("out"));
  ASSERT_OK(q.ConnectInputToBox("in", "f"));
  ASSERT_OK(q.ConnectBoxes("f", 0, "m", 0));
  ASSERT_OK(q.ConnectBoxToOutput("m", 0, "out"));
  ASSERT_OK_AND_ASSIGN(DeployedQuery deployed,
                       DeployQuery(system.get(), q, {{"f", n0}, {"m", n1}}));
  (void)deployed;

  uint64_t delivered = 0;
  ASSERT_OK(system->CollectOutput(
      n1, "out", [&](const Tuple&, SimTime) { ++delivered; }));

  SchemaPtr schema = SchemaAB();
  for (int i = 0; i < 40; ++i) {
    sim.ScheduleAt(SimTime::Micros(i * 500), [&, i]() {
      Tuple t = MakeTuple(schema, {Value(i), Value(i % 5)});
      (void)system->node(n0).Inject("in", t);
    });
  }
  sim.RunFor(SimDuration::Seconds(2));
  ASSERT_EQ(delivered, 40u);

  MetricsRegistry& reg = MetricsRegistry::Global();
  const LatencyHistogram* e2e =
      reg.FindHistogram("latency.attr.out.e2e_us");
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->count(), 40u);
  double stage_sum = 0;
  for (int i = 0; i < kNumStages; ++i) {
    std::string name = std::string("latency.attr.out.") +
                       StageName(static_cast<Stage>(i)) + "_us";
    const LatencyHistogram* h = reg.FindHistogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_EQ(h->count(), e2e->count()) << name;
    stage_sum += h->sum();
  }
  // Exact conservation: the stages telescope to the e2e latency.
  EXPECT_DOUBLE_EQ(stage_sum, e2e->sum());
  EXPECT_GT(e2e->sum(), 0.0) << "cost_us box should produce nonzero latency";

  // Dominant-stage counters partition the deliveries.
  uint64_t dominant_total = 0;
  for (int i = 0; i < kNumStages; ++i) {
    std::string name = std::string("latency.attr.out.dominant.") +
                       StageName(static_cast<Stage>(i));
    const Counter* c = reg.FindCounter(name);
    ASSERT_NE(c, nullptr) << name;
    dominant_total += c->value();
  }
  EXPECT_EQ(dominant_total, e2e->count());
}

}  // namespace
}  // namespace aurora
