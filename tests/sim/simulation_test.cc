#include "sim/simulation.h"

#include <gtest/gtest.h>

namespace aurora {
namespace {

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(SimDuration::Millis(30), [&]() { order.push_back(3); });
  sim.Schedule(SimDuration::Millis(10), [&]() { order.push_back(1); });
  sim.Schedule(SimDuration::Millis(20), [&]() { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), SimTime::Millis(30));
}

TEST(SimulationTest, EqualTimesFifoBySchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(SimTime::Millis(7), [&order, i]() { order.push_back(i); });
  }
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, RunUntilStopsAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.Schedule(SimDuration::Millis(10), [&]() { fired++; });
  sim.Schedule(SimDuration::Millis(50), [&]() { fired++; });
  sim.RunUntil(SimTime::Millis(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), SimTime::Millis(20));
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulationTest, EventsMayScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 10) sim.Schedule(SimDuration::Millis(1), recurse);
  };
  sim.Schedule(SimDuration::Millis(1), recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.Now(), SimTime::Millis(10));
}

TEST(SimulationTest, PeriodicRunsUntilFalse) {
  Simulation sim;
  int ticks = 0;
  sim.SchedulePeriodic(SimDuration::Millis(5), [&]() { return ++ticks < 4; });
  sim.RunAll();
  EXPECT_EQ(ticks, 4);
  EXPECT_EQ(sim.Now(), SimTime::Millis(20));
}

TEST(SimTimeTest, ArithmeticAndConversions) {
  EXPECT_EQ(SimTime::Seconds(1.5).micros(), 1'500'000);
  EXPECT_EQ(SimTime::Millis(2).micros(), 2'000);
  EXPECT_EQ((SimTime::Millis(5) + SimTime::Millis(3)).millis(), 8.0);
  EXPECT_EQ((SimTime::Millis(5) - SimTime::Millis(3)).millis(), 2.0);
  EXPECT_LT(SimTime::Millis(1), SimTime::Millis(2));
}

}  // namespace
}  // namespace aurora
