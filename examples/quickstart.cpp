// Quickstart: the paper's Figures 1 and 2 on a single Aurora node.
//
// Builds the boxes-and-arrows network
//     packets -> Filter(B >= 1) -> Tumble(avg(B) groupby A) -> out
// runs the seven-tuple sample stream of Figure 2 through it, and prints
// what each stage produces. Build & run:
//     cmake -B build -G Ninja && cmake --build build
//     ./build/examples/quickstart
#include <cstdio>

#include "engine/aurora_engine.h"

using namespace aurora;

int main() {
  // 1. Declare the stream schema: tuples (A, B) as in Figure 2.
  SchemaPtr schema = Schema::Make(
      {Field{"A", ValueType::kInt64}, Field{"B", ValueType::kInt64}});

  // 2. Build the query network. Every operator is described by a
  //    declarative spec; the engine instantiates and type-checks it.
  AuroraEngine engine;
  PortId in = *engine.AddInput("packets", schema);
  PortId out = *engine.AddOutput("averages");
  BoxId filter = *engine.AddBox(FilterSpec(
      Predicate::Compare("B", CompareOp::kGe, Value(1))));
  BoxId tumble = *engine.AddBox(TumbleSpec("avg", "B", {"A"}));
  AURORA_CHECK(engine.Connect(Endpoint::InputPort(in),
                              Endpoint::BoxPort(filter, 0)).ok());
  AURORA_CHECK(engine.Connect(Endpoint::BoxPort(filter, 0),
                              Endpoint::BoxPort(tumble, 0)).ok());
  AURORA_CHECK(engine.Connect(Endpoint::BoxPort(tumble, 0),
                              Endpoint::OutputPort(out)).ok());
  AURORA_CHECK(engine.InitializeBoxes().ok());

  // 3. Attach the application: stream outputs are pushed to it (§2.1's
  //    inversion of the traditional pull model).
  engine.SetOutputCallback(out, [](const Tuple& t, SimTime now) {
    std::printf("  t=%5.1fms  ->  (A=%ld, Result=%.1f)\n", now.millis(),
                t.Get("A").AsInt(), t.Get("Result").AsNumeric());
  });

  // 4. Push the Figure 2 sample stream.
  std::printf("Aurora quickstart: Tumble(avg(B), groupby A) over Figure 2\n");
  const int64_t rows[7][2] = {{1, 2}, {1, 3}, {2, 2}, {2, 1},
                              {2, 6}, {4, 5}, {4, 2}};
  for (int i = 0; i < 7; ++i) {
    Tuple t = MakeTuple(schema, {Value(rows[i][0]), Value(rows[i][1])});
    SimTime now = SimTime::Millis(i + 1);
    t.set_timestamp(now);
    std::printf("push #%d (A=%ld, B=%ld)\n", i + 1, rows[i][0], rows[i][1]);
    AURORA_CHECK(engine.PushInput(in, std::move(t), now).ok());
    AURORA_CHECK(engine.RunUntilQuiescent(now).ok());
  }

  // 5. The A=4 window is still open ("would not get emitted until a later
  //    tuple arrives with A not equal to 4"); drain it explicitly.
  std::printf("draining the open window:\n");
  AURORA_CHECK(engine.DrainBoxState(tumble, SimTime::Millis(8)).ok());
  AURORA_CHECK(engine.RunUntilQuiescent(SimTime::Millis(8)).ok());

  std::printf("\nprocessed %llu tuples using %.1f simulated CPU us\n",
              static_cast<unsigned long long>(
                  (*engine.BoxOp(filter))->tuples_in()),
              engine.total_cpu_micros());
  return 0;
}
