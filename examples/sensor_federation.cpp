// Federated operation with Medusa (paper §3.2, §4.4, §7.2): a sensor-
// network operator ("sensornet") sells a temperature stream to an
// analytics firm ("weatherco") under a per-message content contract.
// Shipping everything is expensive, so weatherco uses *remote definition*
// to install its threshold filter inside sensornet's domain and pays for
// the (much smaller) customized stream instead.
#include <cstdio>

#include "distributed/deployment.h"
#include "medusa/medusa_system.h"

using namespace aurora;

int main() {
  Simulation sim;
  OverlayNetwork net(&sim);
  AuroraStarSystem star(&sim, &net, StarOptions{});
  NodeId sensor_proxy = *star.AddNode(NodeOptions{"sensor-proxy", 1.0, {}});
  NodeId analytics = *star.AddNode(NodeOptions{"analytics", 1.0, {}});
  net.FullMesh(LinkOptions{});

  MedusaSystem medusa(&star, MedusaOptions{});
  Participant* sensornet =
      *medusa.AddParticipant("sensornet", {sensor_proxy}, 1000.0, 0.0001);
  Participant* weatherco =
      *medusa.AddParticipant("weatherco", {analytics}, 1000.0, 0.0001);
  sensornet->OfferOperatorKind("filter");
  sensornet->AuthorizeRemoteDefiner("weatherco");

  SchemaPtr readings = Schema::Make({Field{"sensor", ValueType::kInt64},
                                     Field{"temp_c", ValueType::kInt64}});
  GlobalQuery q;
  AURORA_CHECK(q.AddInput("readings", readings).ok());
  AURORA_CHECK(q.AddBox("export", FilterSpec(Predicate::True())).ok());
  AURORA_CHECK(q.AddBox("consume", FilterSpec(Predicate::True())).ok());
  AURORA_CHECK(q.AddOutput("heat_alerts").ok());
  AURORA_CHECK(q.ConnectInputToBox("readings", "export").ok());
  AURORA_CHECK(q.ConnectBoxes("export", 0, "consume", 0).ok());
  AURORA_CHECK(q.ConnectBoxToOutput("consume", 0, "heat_alerts").ok());
  auto deployed = DeployQuery(
      &star, q, {{"export", sensor_proxy}, {"consume", analytics}});
  AURORA_CHECK(deployed.ok());
  std::string boundary_stream = deployed->remote_streams.at("export->consume");

  uint64_t alerts = 0;
  AURORA_CHECK(star.CollectOutput(analytics, "heat_alerts",
                                  [&](const Tuple&, SimTime) { ++alerts; })
                   .ok());

  // Content contract: weatherco pays 0.02 "dollars" per message, 95%
  // availability, for an hour of simulated time.
  int contract = *medusa.EstablishContentContract(
      "sensornet", "weatherco", boundary_stream, /*price=*/0.02,
      SimDuration::Seconds(3600), /*availability=*/0.95);
  medusa.Start();

  Rng rng(7);
  auto run_phase = [&](const char* label, double from_s, double to_s) {
    for (double t = from_s * 1000; t < to_s * 1000; t += 2.0) {
      Tuple reading = MakeTuple(
          readings, {Value(rng.UniformInt(0, 49)),
                     Value(rng.UniformInt(-10, 39))});  // 10 of 50 values >=30
      sim.ScheduleAt(SimTime::Millis(static_cast<int64_t>(t)),
                     [&star, sensor_proxy, reading]() {
                       (void)star.node(sensor_proxy).Inject("readings",
                                                            reading);
                     });
    }
    sim.RunUntil(SimTime::Seconds(to_s));
    const ContentContract& c = *(*medusa.GetContentContract(contract));
    std::printf(
        "%-22s boundary=%8llu bytes  paid=$%-7.2f  balances: sensornet=$%.2f "
        "weatherco=$%.2f\n",
        label,
        static_cast<unsigned long long>(
            net.LinkBytesSent(sensor_proxy, analytics)),
        c.total_paid, sensornet->balance(), weatherco->balance());
  };

  std::printf("phase 1: raw feed crosses the boundary, weatherco filters "
              "locally\n");
  run_phase("after phase 1:", 0.0, 2.0);

  // Remote definition: install (temp_c >= 30) inside sensornet's domain.
  std::string export_output;
  for (const auto& [name, binding] : star.node(sensor_proxy).bindings()) {
    export_output = name;
  }
  AURORA_CHECK(medusa
                   .RemoteDefine("weatherco", "sensornet", sensor_proxy,
                                 export_output,
                                 FilterSpec(Predicate::Compare(
                                     "temp_c", CompareOp::kGe,
                                     Value(static_cast<int64_t>(30)))))
                   .ok());
  std::printf("\nphase 2: weatherco remotely defines Filter(temp_c >= 30) "
              "at the sensor proxy\n");
  uint64_t bytes_before = net.LinkBytesSent(sensor_proxy, analytics);
  run_phase("after phase 2:", 2.0, 4.0);
  uint64_t bytes_after = net.LinkBytesSent(sensor_proxy, analytics);

  std::printf(
      "\nphase-2 boundary traffic: %llu bytes (vs %llu in phase 1) — the "
      "customized stream is ~%.0f%% of the raw feed\n",
      static_cast<unsigned long long>(bytes_after - bytes_before),
      static_cast<unsigned long long>(bytes_before),
      100.0 * static_cast<double>(bytes_after - bytes_before) /
          static_cast<double>(bytes_before));
  std::printf("%llu heat alerts delivered in total\n",
              static_cast<unsigned long long>(alerts));
  return 0;
}
