// High availability (paper §6, Fig. 8): a three-server chain s1 -> s2 -> s3
// protected by upstream backup with k-safety. Server s2 crashes mid-stream;
// s1 detects the silence via heartbeats, re-instantiates s2's query piece
// locally, replays its (truncated-but-sufficient) output log, and the
// application observes every result despite the failure.
#include <cstdio>

#include <set>

#include "ha/upstream_backup.h"

using namespace aurora;

int main() {
  Simulation sim;
  OverlayNetwork net(&sim);
  AuroraStarSystem system(&sim, &net, StarOptions{});
  NodeId s1 = *system.AddNode(NodeOptions{"s1", 1.0, {}});
  NodeId s2 = *system.AddNode(NodeOptions{"s2", 1.0, {}});
  NodeId s3 = *system.AddNode(NodeOptions{"s3", 1.0, {}});
  net.FullMesh(LinkOptions{});

  SchemaPtr schema = Schema::Make(
      {Field{"A", ValueType::kInt64}, Field{"B", ValueType::kInt64}});
  GlobalQuery q;
  AURORA_CHECK(q.AddInput("in", schema).ok());
  AURORA_CHECK(
      q.AddBox("f", FilterSpec(Predicate::Compare("B", CompareOp::kGe,
                                                  Value(0))))
          .ok());
  AURORA_CHECK(q.AddBox("m", MapSpec({{"A", Expr::FieldRef("A")},
                                      {"B", Expr::FieldRef("B")}}))
                   .ok());
  AURORA_CHECK(q.AddBox("t", TumbleSpec("cnt", "B", {"A"})).ok());
  AURORA_CHECK(q.AddOutput("out").ok());
  AURORA_CHECK(q.ConnectInputToBox("in", "f").ok());
  AURORA_CHECK(q.ConnectBoxes("f", 0, "m", 0).ok());
  AURORA_CHECK(q.ConnectBoxes("m", 0, "t", 0).ok());
  AURORA_CHECK(q.ConnectBoxToOutput("t", 0, "out").ok());
  auto deployed = DeployQuery(&system, q, {{"f", s1}, {"m", s2}, {"t", s3}});
  AURORA_CHECK(deployed.ok());

  std::set<int64_t> groups;
  uint64_t duplicates = 0;
  AURORA_CHECK(system
                   .CollectOutput(s3, "out",
                                  [&](const Tuple& t, SimTime) {
                                    if (!groups.insert(t.Get("A").AsInt())
                                             .second) {
                                      ++duplicates;
                                    }
                                  })
                   .ok());

  HaOptions opts;  // k=1, heartbeats every 50ms, 250ms failure timeout
  HaManager ha(&system, opts);
  AURORA_CHECK(ha.Protect(&*deployed, &q).ok());

  // 400 groups, one per ms; s2 dies at t=200ms.
  const int kGroups = 400;
  for (int i = 0; i < kGroups; ++i) {
    sim.ScheduleAt(SimTime::Millis(i), [&system, s1, schema, i]() {
      Tuple t = MakeTuple(schema, {Value(i), Value(i % 10)});
      (void)system.node(s1).Inject("in", t);
    });
  }
  sim.ScheduleAt(SimTime::Millis(200), [&]() {
    std::printf("t=200ms  *** server s2 crashes ***\n");
    ha.CrashNode(s2);
  });

  for (int ms : {100, 200, 300, 400, 600, 1000, 2000}) {
    sim.RunUntil(SimTime::Millis(ms));
    std::printf(
        "t=%4dms  delivered_groups=%zu  retained_log_tuples=%zu  "
        "failures=%d recoveries=%d replayed=%llu\n",
        ms, groups.size(), ha.TotalRetainedTuples(), ha.failures_detected(),
        ha.recoveries(),
        static_cast<unsigned long long>(ha.replayed_tuples()));
  }
  sim.RunUntil(SimTime::Seconds(5));

  int lost = 0;
  for (int i = 0; i < kGroups - 1; ++i) {  // the final group stays open
    if (!groups.count(i)) ++lost;
  }
  std::printf(
      "\nfinal: %zu/%d groups delivered, %d lost, %llu duplicate "
      "deliveries (at-least-once), map box now on node %d\n",
      groups.size(), kGroups - 1, lost,
      static_cast<unsigned long long>(duplicates),
      deployed->boxes.at("m").node);
  std::printf("%s\n", lost == 0 ? "k=1 SAFETY HOLDS: no tuples lost"
                                : "TUPLES LOST — k-safety violated!");
  return lost == 0 ? 0 : 1;
}
