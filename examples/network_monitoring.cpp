// Network monitoring on Aurora* (paper §1's motivating application class,
// §3.1, §5): two edge routers push per-flow packet statistics into a
// three-node Aurora* deployment. A traffic spike overloads the ingest
// node; the decentralized load-share daemon slides the expensive
// aggregation to an idle peer, and throughput recovers.
//
//   router0 --\                      /--> alerts (large flows)
//              +--> union -> tumble +
//   router1 --/       (sum bytes by flow)
#include <cstdio>

#include "distributed/deployment.h"
#include "distributed/load_daemon.h"
#include "workload/generator.h"

using namespace aurora;

int main() {
  Simulation sim;
  OverlayNetwork net(&sim);
  AuroraStarSystem system(&sim, &net, StarOptions{});
  NodeId ingest = *system.AddNode(NodeOptions{"ingest", 1.0, {}});
  NodeId worker = *system.AddNode(NodeOptions{"worker", 1.0, {}});
  NodeId archive = *system.AddNode(NodeOptions{"archive", 1.0, {}});
  net.FullMesh(LinkOptions{});

  SchemaPtr packets = Schema::Make({Field{"flow", ValueType::kInt64},
                                    Field{"bytes", ValueType::kInt64}});
  GlobalQuery q;
  AURORA_CHECK(q.AddInput("router0", packets).ok());
  AURORA_CHECK(q.AddInput("router1", packets).ok());
  AURORA_CHECK(q.AddBox("merge", UnionSpec(2)).ok());
  // Per-flow byte totals over 64-packet windows; deliberately expensive to
  // model deep inspection.
  OperatorSpec agg = TumbleSpec("sum", "bytes", {"flow"}, "total_bytes");
  agg.SetParam("emit", Value(std::string("every_n")));
  agg.SetParam("n", Value(static_cast<int64_t>(64)));
  agg.SetParam("cost_us", Value(300.0));
  AURORA_CHECK(q.AddBox("usage", agg).ok());
  AURORA_CHECK(
      q.AddBox("alarm", FilterSpec(Predicate::Compare(
                            "total_bytes", CompareOp::kGe,
                            Value(static_cast<int64_t>(60'000)))))
          .ok());
  AURORA_CHECK(q.AddOutput("alerts").ok());
  AURORA_CHECK(q.ConnectInputToBox("router0", "merge", 0).ok());
  AURORA_CHECK(q.ConnectInputToBox("router1", "merge", 1).ok());
  AURORA_CHECK(q.ConnectBoxes("merge", 0, "usage", 0).ok());
  AURORA_CHECK(q.ConnectBoxes("usage", 0, "alarm", 0).ok());
  AURORA_CHECK(q.ConnectBoxToOutput("alarm", 0, "alerts").ok());
  auto deployed = DeployQuery(
      &system, q, {{"merge", ingest}, {"usage", ingest}, {"alarm", archive}});
  AURORA_CHECK(deployed.ok()) << deployed.status().ToString();

  uint64_t alerts = 0;
  AURORA_CHECK(system
                   .CollectOutput(archive, "alerts",
                                  [&](const Tuple& t, SimTime now) {
                                    ++alerts;
                                    if (alerts <= 5) {
                                      std::printf(
                                          "  t=%7.1fms ALERT flow=%ld used "
                                          "%ld bytes\n",
                                          now.millis(), t.Get("flow").AsInt(),
                                          t.Get("total_bytes").AsInt());
                                    }
                                  })
                   .ok());

  LoadDaemonOptions opts;
  opts.action = RepartitionAction::kSlideOrSplit;
  opts.split_field = "flow";
  LoadShareDaemon daemon(&system, &*deployed, opts);
  daemon.Start();

  // Two routers; router0's traffic spikes 8x between 1s and 3s.
  Rng rng(2026);
  ZipfGenerator flows(200, 1.1);  // skewed flow popularity
  auto feed = [&](const std::string& input, double t_ms) {
    Tuple t = MakeTuple(packets,
                        {Value(static_cast<int64_t>(flows.Sample(&rng))),
                         Value(rng.UniformInt(100, 1500))});
    sim.ScheduleAt(SimTime::Millis(static_cast<int64_t>(t_ms)),
                   [&system, ingest, input, t]() {
                     (void)system.node(ingest).Inject(input, t);
                   });
  };
  for (double t = 0; t < 4000; t += 1.0) {
    feed("router1", t);
    feed("router0", t);
    if (t >= 1000 && t < 3000) {
      for (int burst = 0; burst < 7; ++burst) feed("router0", t);
    }
  }

  std::printf("monitoring two routers; spike on router0 at t=1s..3s\n");
  for (int second = 1; second <= 5; ++second) {
    sim.RunUntil(SimTime::Seconds(second));
    std::printf(
        "t=%ds  util ingest=%.2f worker=%.2f archive=%.2f  "
        "slides=%llu splits=%llu  backlog(ingest)=%zu\n",
        second, system.node(ingest).utilization(),
        system.node(worker).utilization(),
        system.node(archive).utilization(),
        static_cast<unsigned long long>(daemon.slides()),
        static_cast<unsigned long long>(daemon.splits()),
        system.node(ingest).engine().TotalQueuedTuples());
  }
  std::printf("\n%llu large-flow alerts delivered; usage box now runs on "
              "node %d\n",
              static_cast<unsigned long long>(alerts),
              deployed->boxes.at("usage").node);
  return 0;
}
