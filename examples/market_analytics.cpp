// Market analysis (one of §3's motivating inter-domain services): trades
// arrive irregularly; orders arrive on a second stream. The query
//   trades -> Filter(symbol == 7) -> Resample(price @ 50ms)  -> "ticker"
//   trades + orders -> Join(symbol, ±100ms) -> Slide(sum qty) -> "flow"
// runs across two Aurora* nodes, demonstrating the Join and Resample
// operators and a two-stream deployment.
#include <cstdio>

#include "distributed/deployment.h"
#include "workload/generator.h"

using namespace aurora;

int main() {
  Simulation sim;
  OverlayNetwork net(&sim);
  AuroraStarSystem system(&sim, &net, StarOptions{});
  NodeId feed = *system.AddNode(NodeOptions{"feed-handler", 1.0, {}});
  NodeId analytics = *system.AddNode(NodeOptions{"analytics", 1.0, {}});
  net.FullMesh(LinkOptions{});

  SchemaPtr trades = Schema::Make({Field{"symbol", ValueType::kInt64},
                                   Field{"price", ValueType::kInt64}});
  SchemaPtr orders = Schema::Make({Field{"sym", ValueType::kInt64},
                                   Field{"qty", ValueType::kInt64}});
  GlobalQuery q;
  AURORA_CHECK(q.AddInput("trades", trades).ok());
  AURORA_CHECK(q.AddInput("orders", orders).ok());
  // Branch 1: a regular 50ms price series for symbol 7.
  AURORA_CHECK(
      q.AddBox("sym7", FilterSpec(Predicate::Compare(
                           "symbol", CompareOp::kEq,
                           Value(static_cast<int64_t>(7)))))
          .ok());
  AURORA_CHECK(q.AddBox("ticker", ResampleSpec("price", 50'000)).ok());
  AURORA_CHECK(q.AddOutput("price_series").ok());
  AURORA_CHECK(q.ConnectInputToBox("trades", "sym7").ok());
  AURORA_CHECK(q.ConnectBoxes("sym7", 0, "ticker", 0).ok());
  AURORA_CHECK(q.ConnectBoxToOutput("ticker", 0, "price_series").ok());
  // Branch 2: order flow against trades, then a 16-match sliding volume.
  AURORA_CHECK(q.AddBox("match", JoinSpec("symbol", "sym", 100'000)).ok());
  AURORA_CHECK(q.AddBox("volume", SlideSpec("sum", "qty", 16)).ok());
  AURORA_CHECK(q.AddOutput("order_flow").ok());
  AURORA_CHECK(q.ConnectInputToBox("trades", "match", 0).ok());
  AURORA_CHECK(q.ConnectInputToBox("orders", "match", 1).ok());
  AURORA_CHECK(q.ConnectBoxes("match", 0, "volume", 0).ok());
  AURORA_CHECK(q.ConnectBoxToOutput("volume", 0, "order_flow").ok());

  auto deployed = DeployQuery(&system, q,
                              {{"sym7", feed},
                               {"ticker", feed},
                               {"match", analytics},
                               {"volume", analytics}});
  AURORA_CHECK(deployed.ok()) << deployed.status().ToString();

  int ticks = 0;
  AURORA_CHECK(system
                   .CollectOutput(feed, "price_series",
                                  [&](const Tuple& t, SimTime) {
                                    if (++ticks <= 6) {
                                      std::printf(
                                          "  tick @%6.0fms  sym7 price=%.1f\n",
                                          t.Get("ts").AsNumeric() / 1000.0,
                                          t.Get("price").AsNumeric());
                                    }
                                  })
                   .ok());
  int flow_windows = 0;
  double last_volume = 0;
  AURORA_CHECK(system
                   .CollectOutput(analytics, "order_flow",
                                  [&](const Tuple& t, SimTime) {
                                    ++flow_windows;
                                    last_volume = t.Get("Result").AsNumeric();
                                  })
                   .ok());

  // Irregular Poisson trades over 10 symbols; bursty orders.
  Rng rng(99);
  double t_ms = 0;
  int n_trades = 0;
  while (t_ms < 3000) {
    t_ms += rng.Exponential(3.0);  // ~330 trades/s
    Tuple trade = MakeTuple(
        trades, {Value(rng.UniformInt(0, 9)),
                 Value(100 + rng.UniformInt(-5, 5))});
    sim.ScheduleAt(SimTime::Millis(static_cast<int64_t>(t_ms)),
                   [&system, feed, trade]() {
                     (void)system.node(feed).Inject("trades", trade);
                   });
    ++n_trades;
  }
  double o_ms = 0;
  int n_orders = 0;
  while (o_ms < 3000) {
    o_ms += rng.Exponential(10.0);
    Tuple order = MakeTuple(orders, {Value(rng.UniformInt(0, 9)),
                                     Value(rng.UniformInt(1, 100))});
    // The orders input homes with its consumer (the join on analytics).
    sim.ScheduleAt(SimTime::Millis(static_cast<int64_t>(o_ms)),
                   [&system, analytics, order]() {
                     (void)system.node(analytics).Inject("orders", order);
                   });
    ++n_orders;
  }

  std::printf("streaming %d trades and %d orders over 3s...\n", n_trades,
              n_orders);
  sim.RunUntil(SimTime::Seconds(4));
  std::printf(
      "\n%d regular price ticks emitted (irregular trades resampled @50ms)\n"
      "%d sliding order-flow windows; last 16-match volume = %.0f shares\n"
      "cross-node traffic: %llu bytes feed->analytics\n",
      ticks, flow_windows, last_volume,
      static_cast<unsigned long long>(net.LinkBytesSent(feed, analytics)));
  return 0;
}
